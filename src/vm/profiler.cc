#include "vm/profiler.h"

#include <algorithm>

#include "support/logging.h"

namespace beehive::vm {

void
Profiler::addCandidateAnnotation(const std::string &name)
{
    for (MethodId id : program_.methodsWithAnnotation(name))
        candidates_.insert(id);
}

bool
Profiler::isCandidate(MethodId id) const
{
    return candidates_.count(id) > 0;
}

std::vector<MethodId>
Profiler::candidates() const
{
    return {candidates_.begin(), candidates_.end()};
}

void
Profiler::recordExecution(
    MethodId root, double cost_ns, const std::set<KlassId> &klasses,
    const std::set<std::pair<KlassId, uint32_t>> &statics,
    uint64_t monitor_enters)
{
    bh_assert(isCandidate(root), "recording a non-candidate root");
    RootProfile &p = profiles_[root];
    ++p.invocations;
    p.total_cost_ns += cost_ns;
    p.monitor_enters += monitor_enters;
    p.klasses.insert(klasses.begin(), klasses.end());
    p.statics.insert(statics.begin(), statics.end());
}

const RootProfile *
Profiler::profile(MethodId root) const
{
    auto it = profiles_.find(root);
    return it == profiles_.end() ? nullptr : &it->second;
}

std::vector<MethodId>
Profiler::selectRoots(double min_total_ns, double min_avg_ns) const
{
    std::vector<MethodId> out;
    for (const auto &[id, p] : profiles_) {
        if (p.total_cost_ns >= min_total_ns &&
            p.avgCostNs() >= min_avg_ns) {
            out.push_back(id);
        }
    }
    std::sort(out.begin(), out.end(), [&](MethodId a, MethodId b) {
        return profiles_.at(a).total_cost_ns >
               profiles_.at(b).total_cost_ns;
    });
    return out;
}

std::vector<MethodId>
Profiler::selectRootsSyncAware(double min_total_ns, double min_avg_ns,
                               double max_avg_syncs) const
{
    std::vector<MethodId> out;
    for (MethodId id : selectRoots(min_total_ns, min_avg_ns)) {
        if (profiles_.at(id).avgSyncs() <= max_avg_syncs)
            out.push_back(id);
    }
    return out;
}

} // namespace beehive::vm
