/**
 * @file
 * Static bytecode verification for HiveVM programs.
 *
 * Every Program built through CodeBuilder is executed completely
 * unchecked today: a bad jump target, an unbalanced stack, or an
 * out-of-range klass/method id corrupts interpreter frames at run
 * time (the interpreter panics mid-request) instead of being
 * rejected at load. Real bytecode VMs verify before executing --
 * the JVM's stack-map verifier and Firedancer's sBPF validator are
 * the models -- and BeeHive additionally depends on bytecode the
 * steppable interpreter can suspend/resume at any instruction
 * boundary, which only holds for structurally well-formed code.
 *
 * The Verifier runs an abstract interpretation over each method:
 * basic-block discovery, then a worklist dataflow pass that
 * simulates stack depth and a small type lattice per block,
 * checking
 *
 *   - jump targets inside the method,
 *   - Load/Store slots within num_locals,
 *   - operand ids (klass, method, name, string, field, static
 *     slot) in range,
 *   - stack depth agreement at merge points,
 *   - no fall-off-the-end without Ret,
 *   - balanced MonitorEnter/MonitorExit on every path,
 *   - unreachable code (reported as a warning),
 *
 * and produces a structured Diagnostic list instead of throwing, so
 * tools (hivelint) can print every finding and the server load path
 * can decide between rejecting and logging.
 */

#ifndef BEEHIVE_VM_VERIFIER_H
#define BEEHIVE_VM_VERIFIER_H

#include <cstdint>
#include <string>
#include <vector>

#include "vm/program.h"

namespace beehive::vm {

/** What a diagnostic means for executing the program. */
enum class Severity : uint8_t
{
    Warning, //!< suspicious but executable (e.g. dead code)
    Error,   //!< executing this method can corrupt the interpreter
};

/** Machine-readable diagnostic classes (one per check). */
enum class DiagCode : uint8_t
{
    BadJumpTarget,     //!< branch outside [0, code.size())
    StackUnderflow,    //!< an instruction pops more than is present
    MergeMismatch,     //!< stack depth disagrees at a join point
    BadLocalSlot,      //!< Load/Store slot >= num_locals
    BadKlassId,        //!< klass operand out of range
    BadMethodId,       //!< method operand out of range / wrong kind
    BadNameId,         //!< CallVirt name id out of range
    BadStringIndex,    //!< NewBytes string-pool index out of range
    BadFieldIndex,     //!< field index >= receiver field count
    BadStaticSlot,     //!< static slot >= klass static count
    BadCallArity,      //!< CallVirt arity provably wrong
    BadImmediate,      //!< malformed immediate (e.g. Compute < 0)
    FallOffEnd,        //!< control reaches the end without Ret
    UnbalancedMonitor, //!< MonitorEnter/Exit unpaired on some path
    TypeMismatch,      //!< operand kind provably wrong for the op
    UnreachableCode,   //!< instructions no path reaches
};

/** One verification finding. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    DiagCode code = DiagCode::BadJumpTarget;
    MethodId method = kNoMethod;
    uint32_t pc = 0;
    std::string message;
};

/** Human-readable rendering: "error: Klass.method+pc: message". */
std::string toString(const Diagnostic &d, const Program &program);

/** Short mnemonic for a DiagCode ("bad-jump", "stack-underflow"). */
const char *diagCodeName(DiagCode code);

/** Knobs of one verification run. */
struct VerifyOptions
{
    /**
     * Closed-world typing: values of statically unknown kind
     * (method arguments, field loads, call results) are rejected
     * wherever a specific kind is required -- a dereference, an
     * array index, an array length. Under strict typing, an
     * accepted program provably never trips the interpreter's
     * type/nullness assertions, which is what the fuzz harness
     * uses the verifier for (crash oracle). The default trusts
     * unknown values at those sites, matching how the apps pass
     * untyped arguments across method boundaries.
     */
    bool strict_types = false;

    /** Report instructions no control path reaches. */
    bool check_unreachable = true;
};

/** Outcome of verifying one method or a whole program. */
struct VerifyResult
{
    std::vector<Diagnostic> diagnostics;

    std::size_t errorCount() const;
    std::size_t warningCount() const;
    /** True when no Error-severity diagnostic was produced. */
    bool ok() const { return errorCount() == 0; }
};

/** Abstract-interpretation bytecode verifier. */
class Verifier
{
  public:
    explicit Verifier(const Program &program,
                      VerifyOptions options = {});

    /** Verify every bytecode method in the program. */
    VerifyResult verifyAll() const;

    /** Verify a single method, appending to @p out. */
    void verifyMethod(MethodId id, VerifyResult &out) const;

  private:
    struct State;

    void analyzeDataflow(MethodId id, const Method &m,
                         VerifyResult &out) const;

    const Program &program_;
    VerifyOptions options_;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_VERIFIER_H
