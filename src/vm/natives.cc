#include "vm/natives.h"

#include "support/logging.h"

namespace beehive::vm {

uint32_t
NativeRegistry::add(std::string name, NativeCategory category,
                    NativeFn fn)
{
    bh_assert(by_name_.find(name) == by_name_.end(),
              "duplicate native %s", name.c_str());
    uint32_t id = static_cast<uint32_t>(natives_.size());
    by_name_[name] = id;
    natives_.push_back(
        NativeMethod{std::move(name), category, std::move(fn)});
    return id;
}

const NativeMethod &
NativeRegistry::get(uint32_t id) const
{
    bh_assert(id < natives_.size(), "bad native id %u", id);
    return natives_[id];
}

uint32_t
NativeRegistry::find(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? kNoNative : it->second;
}

} // namespace beehive::vm
