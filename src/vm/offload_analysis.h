/**
 * @file
 * Static offloadability analysis over HiveVM bytecode.
 *
 * The OffloadManager decides *when* to offload; this pass answers
 * *whether* an endpoint root can be offloaded at all, before a single
 * request runs. It reads the interprocedural effect summaries from
 * vm/analysis.h -- `Call` and `CallNative` resolve statically,
 * `CallVirt` devirtualizes when the receiver klass is statically
 * known and otherwise unions every same-named method in the program
 * -- and classifies the root by what the reachable methods do:
 *
 *   - **OffloadSafe**: only pure-on-heap / stateless natives, no
 *     static writes, no monitors. A function instance can run this
 *     root with nothing but the closure.
 *   - **NeedsFallback**: reachable behaviour the paper handles with
 *     a runtime fallback -- hidden-state or network natives on
 *     Packageable klasses (Section 3.2), `PutStatic` (write-back),
 *     monitors/volatiles (Section 4.2 synchronization), or a
 *     virtual call the analysis cannot bound. Offloading works but
 *     leans on the fallback machinery.
 *   - **LocalOnly**: a hidden-state or network native whose owner
 *     klass is not Packageable is reachable; there is no way to
 *     rebuild that native's off-heap state on the function side, so
 *     offloading this root is statically known to be unsound.
 */

#ifndef BEEHIVE_VM_OFFLOAD_ANALYSIS_H
#define BEEHIVE_VM_OFFLOAD_ANALYSIS_H

#include <memory>
#include <string>
#include <vector>

#include "vm/analysis.h"
#include "vm/program.h"
#include "vm/race_analysis.h"

namespace beehive::vm {

/** Static offloadability of an endpoint root. */
enum class OffloadClass : uint8_t
{
    OffloadSafe,   //!< no fallback-triggering behaviour reachable
    NeedsFallback, //!< offloadable, relies on runtime fallbacks
    LocalOnly,     //!< statically unsound to offload
};

const char *toString(OffloadClass c);

/** Why a root landed in its class (one human-readable reason each). */
struct OffloadReason
{
    OffloadClass demands = OffloadClass::OffloadSafe;
    MethodId method = kNoMethod; //!< the reachable method at fault
    uint32_t pc = 0;
    std::string message;
};

/** Full classification of one root. */
struct RootReport
{
    MethodId root = kNoMethod;
    OffloadClass klass = OffloadClass::OffloadSafe;
    /** Every method the call-graph walk reached (root included). */
    std::vector<MethodId> reachable;
    /** Reasons of NeedsFallback/LocalOnly strength, worst first. */
    std::vector<OffloadReason> reasons;
    /** Monitor sites whose lock the race detector proved vacuous
     * (race admission only; they no longer demand a fallback). */
    uint32_t vacuous_monitors = 0;
};

/** Render a report as one log-friendly line. */
std::string toString(const RootReport &report,
                     const Program &program);

/**
 * Classification facade over the interprocedural framework
 * (vm/analysis.h). PR 1's hand-rolled call-graph walk is gone: the
 * reachable set, the per-site reasons, and the class now all come
 * from effect summaries, which also buys monitor/volatile elision --
 * a root whose only monitors guard freshly allocated, non-escaping
 * objects is OffloadSafe where the coarse walk said NeedsFallback.
 */
class OffloadAnalysis
{
  public:
    /**
     * @param race_admission Run the lockset race detector
     *     (vm/race_analysis.h) and drop the fallback demand of
     *     monitor sites whose lock is provably vacuous -- it guards
     *     only thread-local or read-only-shared state, so there is
     *     nothing for the cross-endpoint synchronization to
     *     protect. This is how the detector feeds admission: roots
     *     whose only fallback reason was such a monitor become
     *     OffloadSafe.
     */
    explicit OffloadAnalysis(const Program &program,
                             bool race_admission = false);

    /** Classify @p root; walks its reachable call graph. */
    RootReport classifyRoot(MethodId root) const;

    /** Convenience: classification without the evidence. */
    OffloadClass classOf(MethodId root) const
    {
        return classifyRoot(root).klass;
    }

    /** Minimal capture set for @p root (closure slimming). */
    CaptureSet captureForRoot(MethodId root) const
    {
        return analysis_.captureForRoot(root);
    }

    /** The underlying framework (summaries, lock graph, ...). */
    const ProgramAnalysis &analysis() const { return analysis_; }

    /** The race detector; null unless race admission is on. */
    const RaceAnalysis *raceAnalysis() const { return races_.get(); }

  private:
    const Program &program_;
    ProgramAnalysis analysis_;
    std::unique_ptr<RaceAnalysis> races_;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_OFFLOAD_ANALYSIS_H
