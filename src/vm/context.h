/**
 * @file
 * Per-endpoint VM state: loaded klasses, statics, warmup, hooks.
 *
 * One VmContext is the analogue of one JVM instance: the server runs
 * one, and every FaaS function instance runs one. Interpreters (one
 * per in-flight request) share their endpoint's context.
 */

#ifndef BEEHIVE_VM_CONTEXT_H
#define BEEHIVE_VM_CONTEXT_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "vm/heap.h"
#include "vm/natives.h"
#include "vm/program.h"
#include "vm/value.h"

namespace beehive::vm {

class Profiler;
class RaceOracle;

/** How the interpreter should treat a native call on this endpoint. */
enum class NativeDisposition
{
    RunLocal,  //!< execute the handler here
    Fallback,  //!< suspend; the driver performs a server round trip
};

/** Tuning knobs of one VM instance. */
struct VmConfig
{
    /** Endpoint number used for lock-owner words (0 = server). */
    uint16_t endpoint = 0;

    /** FaaS-side remote-reference load checks (paper Section 4.1). */
    bool check_remote_refs = false;

    /** Suspend after this much accumulated compute (CPU ns). */
    double quantum_ns = 100000.0; // 100 us

    /** Base cost of one bytecode instruction at full speed (ns). */
    double instr_cost_ns = 2.0;

    /**
     * JVM warmup model: methods run @ref cold_multiplier times
     * slower until they have been invoked jit_threshold times on
     * this endpoint ("the first-time execution is usually slow",
     * paper Section 3.4).
     */
    uint32_t jit_threshold = 5;
    double cold_multiplier = 8.0;

    /** Klass used for byte objects created by NewBytes. */
    KlassId bytes_klass = kNoKlass;
    /** Klass used for plain arrays created by helpers. */
    KlassId array_klass = kNoKlass;
};

/**
 * The mutable state of one VM instance.
 */
class VmContext
{
  public:
    /**
     * Policy asked on MonitorEnter: does acquiring @p obj require a
     * cross-endpoint synchronization (previous owner elsewhere)?
     * Installed by the BeeHive runtime; null means never.
     */
    using MonitorPolicy = std::function<bool(Ref obj)>;

    /** Hook fired when a monitor is released (release consistency). */
    using MonitorReleaseHook = std::function<void(Ref obj)>;

    /**
     * Policy asked before running a native on this endpoint.
     * Installed by the BeeHive runtime; null means RunLocal.
     */
    using NativePolicy = std::function<NativeDisposition(
        const NativeMethod &native, const std::vector<Value> &args)>;

    VmContext(const Program &program, NativeRegistry &natives,
              Heap &heap, VmConfig config);

    const Program &program() const { return program_; }
    NativeRegistry &natives() { return natives_; }
    Heap &heap() { return heap_; }
    const VmConfig &config() const { return config_; }
    VmConfig &config() { return config_; }

    /** @name Klass loading */
    /// @{
    bool isLoaded(KlassId id) const;
    /** Install a klass (fault resolution or initial closure). */
    void loadKlass(KlassId id);
    /** Load every klass in the program (server startup). */
    void loadAll();
    std::size_t loadedCount() const { return loaded_count_; }
    /// @}

    /** @name Statics */
    /// @{
    Value getStatic(KlassId klass, uint32_t slot);
    void setStatic(KlassId klass, uint32_t slot, Value v);
    /** Iterate all static slots (GC roots, sync). */
    void forEachStatic(const std::function<void(Value &)> &fn);
    /// @}

    /** @name Remote object mapping (FaaS side) */
    /// @{
    /** Record that server object @p remote now lives at @p local. */
    void mapRemote(Ref remote, Ref local);
    /** Local address for a fetched remote object (kNullRef if none). */
    Ref lookupRemote(Ref remote) const;
    std::size_t remoteMapSize() const { return remote_map_.size(); }
    /// @}

    /** @name Warmup model */
    /// @{
    /** Count an invocation; returns the cost multiplier to apply. */
    double methodEntered(MethodId id);
    /** Current multiplier without counting. */
    double costMultiplier(MethodId id) const;
    uint64_t invocations(MethodId id) const;
    /// @}

    /**
     * Policy asked at every bytecode call site: should this call be
     * redirected to a FaaS function (the Semi-FaaS split)? The
     * offload manager installs it on the server; it must return
     * true only when an offload will actually be dispatched.
     */
    using OffloadPolicy = std::function<bool(MethodId)>;

    /** @name Policies and hooks */
    /// @{
    void setOffloadPolicy(OffloadPolicy p)
    {
        offload_policy_ = std::move(p);
    }
    bool
    shouldOffload(MethodId id) const
    {
        return offload_policy_ && offload_policy_(id);
    }
    void setMonitorPolicy(MonitorPolicy p) { monitor_policy_ = std::move(p); }
    void setMonitorReleaseHook(MonitorReleaseHook h)
    {
        monitor_release_ = std::move(h);
    }
    void setNativePolicy(NativePolicy p) { native_policy_ = std::move(p); }
    void setProfiler(Profiler *p) { profiler_ = p; }
    Profiler *profiler() { return profiler_; }
    /** Dynamic race oracle (race_check knob); null = not tracking. */
    void setRaceOracle(RaceOracle *o) { race_oracle_ = o; }
    RaceOracle *raceOracle() { return race_oracle_; }

    bool needsRemoteAcquire(Ref obj) const
    {
        return monitor_policy_ && monitor_policy_(obj);
    }
    void monitorReleased(Ref obj)
    {
        if (monitor_release_)
            monitor_release_(obj);
    }
    NativeDisposition
    nativeDisposition(const NativeMethod &native,
                      const std::vector<Value> &args) const
    {
        return native_policy_ ? native_policy_(native, args)
                              : NativeDisposition::RunLocal;
    }
    /// @}

    /** One-shot override: run the next faulting native locally. */
    void forceNextNativeLocal() { force_local_native_ = true; }
    bool consumeForceLocalNative()
    {
        bool v = force_local_native_;
        force_local_native_ = false;
        return v;
    }

    /** @name Inline caches (CallVirt dispatch)
     *
     * One monomorphic cache line per CallVirt site, owned by the
     * endpoint (so caches stay warm across the per-request
     * interpreters, like compiled call sites in a long-lived JVM).
     * The interpreter consults the line before touching the frozen
     * vtable; hits/misses are counted per interpreter in InterpStats
     * and aggregated here for endpoint-level reporting.
     */
    /// @{
    struct InlineCache
    {
        KlassId klass = kNoKlass;   //!< cached receiver klass
        MethodId method = kNoMethod; //!< resolved target
        uint32_t fills = 0;          //!< 1 = stayed monomorphic
    };

    /** Cache line for pc @p pc of method @p m (lazily allocated). */
    InlineCache &inlineCache(MethodId m, uint32_t pc);

    /** Endpoint-wide dispatch counters (summed over interpreters). */
    void countDispatch(bool hit)
    {
        if (hit)
            ++ic_hits_;
        else
            ++ic_misses_;
    }
    uint64_t icHits() const { return ic_hits_; }
    uint64_t icMisses() const { return ic_misses_; }

    /** Visit every filled cache line (site stats, benches). */
    void forEachInlineCache(
        const std::function<void(MethodId, uint32_t,
                                 const InlineCache &)> &fn) const;
    /// @}

    /** Per-context native invocation census (Table 2). */
    void countNative(NativeCategory cat) { native_counts_[
        static_cast<std::size_t>(cat)]++; }
    uint64_t nativeCount(NativeCategory cat) const
    {
        return native_counts_[static_cast<std::size_t>(cat)];
    }
    void resetNativeCounts() { native_counts_.fill(0); }

  private:
    const Program &program_;
    NativeRegistry &natives_;
    Heap &heap_;
    VmConfig config_;

    std::vector<bool> loaded_;
    std::size_t loaded_count_ = 0;
    std::map<KlassId, std::vector<Value>> statics_;
    std::unordered_map<Ref, Ref> remote_map_;
    std::unordered_map<MethodId, uint64_t> invocation_counts_;

    OffloadPolicy offload_policy_;
    MonitorPolicy monitor_policy_;
    MonitorReleaseHook monitor_release_;
    NativePolicy native_policy_;
    Profiler *profiler_ = nullptr;
    RaceOracle *race_oracle_ = nullptr;
    bool force_local_native_ = false;
    std::array<uint64_t, 4> native_counts_{};

    /** ic_lines_[method][pc]: flat per-site cache lines. */
    std::vector<std::vector<InlineCache>> ic_lines_;
    uint64_t ic_hits_ = 0;
    uint64_t ic_misses_ = 0;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_CONTEXT_H
