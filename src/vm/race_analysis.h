/**
 * @file
 * Interprocedural lockset race detector over HiveVM bytecode.
 *
 * BeeHive's correctness story rests on offloaded shadow threads
 * synchronizing against the server heap through monitors: a program
 * with an unprotected shared access races silently *across the
 * server/FaaS boundary*, which is strictly worse than racing inside
 * one process. This pass is an Eraser-style lockset analysis layered
 * on the interprocedural framework (vm/analysis.h):
 *
 *  1. **Locksets per access.** Every static/field/element access
 *     site carries the lock tokens held around it intra-procedurally
 *     (AccessRecord). A top-down fixpoint over the devirtualized
 *     call graph adds the *context lockset*: the intersection, over
 *     all call paths reaching a method, of the locks held at the
 *     call sites (entry methods start from the empty set; the
 *     intersection lattice makes the fixpoint decreasing and
 *     therefore terminating).
 *
 *  2. **Sharing filter.** A scope -- a (klass, field) pair, a
 *     static slot, or a klass's array elements -- can only race if
 *     objects of that klass are reachable by more than one thread.
 *     Statics always are. Instance scopes count as *shared* when
 *     the receiver klass is reachable from a static root through
 *     the declared type hints or an observed store, or when the
 *     receiver klass is statically unknown (conservative widening).
 *     Accesses whose receiver is provably fresh and non-escaping
 *     are thread-local and never shared.
 *
 *  3. **Eraser lattice per scope.** ThreadLocal (all accesses on
 *     method-local receivers) -> ReadShared (shared, but never
 *     written through a shared receiver) -> ConsistentlyGuarded
 *     (the candidate lockset -- the intersection of the effective
 *     locksets of all shared accesses -- is non-empty) ->
 *     GuardedByUnknown (empty candidate set, but some access holds
 *     a lock whose identity the analysis lost) -> Unguarded (a
 *     shared write with a provably empty common lockset: a race
 *     finding).
 *
 * Closing the loop into offload admission: a monitor is *vacuous*
 * when every scope ever accessed under it (anywhere in the program)
 * is ThreadLocal or ReadShared -- the critical section protects no
 * mutable shared state, so skipping the cross-endpoint
 * synchronization fallback for it is unobservable. OffloadAnalysis
 * consumes vacuousLocks() to upgrade roots whose only monitors are
 * vacuous from needs-fallback to offload-safe.
 *
 * The dynamic counterpart (vm/race_oracle.h) tracks vector clocks
 * at runtime; tests/race_test.cc cross-checks that every
 * dynamically observed race is statically reported.
 */

#ifndef BEEHIVE_VM_RACE_ANALYSIS_H
#define BEEHIVE_VM_RACE_ANALYSIS_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "vm/analysis.h"
#include "vm/program.h"

namespace beehive::vm {

/** Eraser-style guard state of one scope, weakest claim last. */
enum class GuardState : uint8_t
{
    ThreadLocal,         //!< only method-local receivers
    ReadShared,          //!< shared, never written
    ConsistentlyGuarded, //!< common lock on every shared access
    GuardedByUnknown,    //!< a held lock's identity was lost
    Unguarded,           //!< shared write with empty lockset: race
};

const char *toString(GuardState s);

/** What a lockset guards: a field, a static slot, or elements. */
struct RaceScope
{
    AccessRecord::Scope kind = AccessRecord::Scope::Field;
    KlassId klass = kNoKlass;
    uint32_t slot = 0;

    bool operator<(const RaceScope &o) const;
    bool operator==(const RaceScope &o) const;
};

std::string toString(const RaceScope &scope, const Program &program);

/** Classification of one scope, with the evidence. */
struct ScopeReport
{
    RaceScope scope;
    GuardState state = GuardState::ThreadLocal;
    /** Locks held on *every* shared access (guard candidates). */
    std::vector<LockToken> candidate;
    /** Shared accesses / shared writes seen. */
    uint32_t shared_accesses = 0;
    uint32_t shared_writes = 0;
    /** Example site: the worst access (a lockless shared write for
     * Unguarded, else any shared access). */
    MethodId method = kNoMethod;
    uint32_t pc = 0;

    std::string describe(const Program &program) const;
};

/**
 * The detector. Everything is computed eagerly; @p analysis and
 * @p program must outlive this object.
 */
class RaceAnalysis
{
  public:
    RaceAnalysis(const Program &program,
                 const ProgramAnalysis &analysis);

    /** Every classified scope, deterministically ordered. */
    const std::vector<ScopeReport> &scopes() const { return scopes_; }

    /** Unguarded shared writes only: the race findings. */
    const std::vector<ScopeReport> &findings() const
    {
        return findings_;
    }

    /**
     * Locks guarding nothing but thread-local or read-only-shared
     * scopes program-wide: skipping their cross-endpoint
     * synchronization fallback is unobservable. Empty when the
     * program has methods the analysis could not model (an
     * unresolved virtual call or a dataflow bailout widens every
     * claim, so no admission upgrade is sound).
     */
    const std::set<LockToken> &vacuousLocks() const
    {
        return vacuous_;
    }

    /**
     * Interprocedural context lockset of @p id: locks held on every
     * call path from an entry to the method (excluding locks the
     * method takes itself).
     */
    const std::vector<LockToken> &contextLockset(MethodId id) const;

    /** Does the scope classify as statically reported (Unguarded or
     * GuardedByUnknown)? The dynamic-oracle cross-check treats both
     * as "the detector warned about this scope". */
    bool reportedAt(const RaceScope &scope) const;

    /** A method bailed or an unresolved virtual widened the result. */
    bool incomplete() const { return incomplete_; }

  private:
    void computeContexts();
    void computeSharedKlasses();
    void classify();

    const Program &program_;
    const ProgramAnalysis &analysis_;
    std::vector<std::vector<LockToken>> context_;
    /** Methods whose context is still ⊤ (never called, no entry). */
    std::vector<bool> context_top_;
    /** An unknown-identity lock is held on every path to the method. */
    std::vector<bool> context_unknown_;
    std::set<KlassId> shared_klasses_;
    std::map<RaceScope, GuardState> state_of_;
    std::vector<ScopeReport> scopes_;
    std::vector<ScopeReport> findings_;
    std::set<LockToken> vacuous_;
    bool incomplete_ = false;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_RACE_ANALYSIS_H
