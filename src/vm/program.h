/**
 * @file
 * Static program metadata: klasses, methods, annotations, bytecode.
 *
 * A Program is the analogue of the application's jar file: the
 * immutable universe of classes and methods. Each endpoint VM keeps
 * its own *loaded set* of klasses -- the server loads everything at
 * startup, while a FaaS function starts with only the klasses in its
 * initial closure and faults the rest in on demand (the paper's
 * missing-code fallback).
 */

#ifndef BEEHIVE_VM_PROGRAM_H
#define BEEHIVE_VM_PROGRAM_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/logging.h"
#include "vm/value.h"

namespace beehive::vm {

using KlassId = uint32_t;
using MethodId = uint32_t;
using NameId = uint32_t;

constexpr KlassId kNoKlass = UINT32_MAX;
constexpr MethodId kNoMethod = UINT32_MAX;

/** Bytecode operations of the HiveVM stack machine. */
enum class Op : uint8_t
{
    Nop,
    // Stack and locals. a = slot / immediate.
    PushI,       //!< push int immediate a
    PushF,       //!< push double (bit pattern in a)
    PushNil,
    Load,        //!< push locals[a]
    Store,       //!< locals[a] = pop
    Dup,
    Pop,
    Swap,
    // Arithmetic/logic. Operate on the top of the stack.
    Add, Sub, Mul, Div, Mod, Neg,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
    And, Or, Not,
    // Control. a = absolute target pc.
    Jmp,
    Jz,          //!< jump when popped value is falsy
    Jnz,
    // Objects. a = klass / field index.
    New,         //!< push new instance of klass a
    GetField,    //!< pop obj; push obj.field[a]
    PutField,    //!< pop value, pop obj; obj.field[a] = value
    NewArr,      //!< pop length; push new array of klass a
    ALoad,       //!< pop idx, pop arr; push arr[idx]
    AStore,      //!< pop value, pop idx, pop arr; arr[idx] = value
    ArrLen,      //!< pop arr; push its length
    NewBytes,    //!< push new byte object from string-pool entry a
    BytesLen,    //!< pop bytes; push length
    GetStatic,   //!< push statics[klass a][slot b]
    PutStatic,   //!< statics[klass a][slot b] = pop
    // Calls. a = method id / name id; b = arg count for CallVirt.
    Call,        //!< invoke method a; args on stack in order
    CallVirt,    //!< resolve name a on receiver (b args incl. recv)
    CallNative,  //!< invoke native method a (declared in program)
    Ret,         //!< return top of stack to the caller
    // Synchronization (paper Section 4.2).
    MonitorEnter, //!< pop obj; acquire its monitor
    MonitorExit,  //!< pop obj; release its monitor
    GetVolatile,  //!< like GetField with acquire semantics
    PutVolatile,  //!< like PutField with release semantics
    // Modelled computation: spend a nanoseconds of CPU work.
    Compute,
};

/** One bytecode instruction (fixed two-operand encoding). */
struct Instr
{
    Op op = Op::Nop;
    int64_t a = 0;
    int64_t b = 0;
};

/** Annotation attached to a method or klass (e.g. "RequestMapping"). */
struct Annotation
{
    std::string name;

    bool operator==(const Annotation &o) const { return name == o.name; }
};

/** Categories of native methods (paper Table 2). */
enum class NativeCategory : uint8_t
{
    PureOnHeap,   //!< e.g. System.arraycopy: heap-only, offloadable
    HiddenState,  //!< e.g. MethodAccessor.invoke0: off-heap state
    Network,      //!< e.g. socketRead0: stateful connections
    Stateless,    //!< e.g. Thread.currentThread: no side effects
};

/** A method: bytecode or native. */
struct Method
{
    std::string name;                  //!< unqualified name
    KlassId owner = kNoKlass;
    uint16_t num_args = 0;             //!< locals [0, num_args) on entry
    uint16_t num_locals = 0;           //!< total local slots
    std::vector<Instr> code;
    std::vector<Annotation> annotations;
    bool is_native = false;
    uint32_t native_id = 0;            //!< key into the NativeRegistry
    NativeCategory native_category = NativeCategory::PureOnHeap;

    bool hasAnnotation(const std::string &name) const;
};

/**
 * Declared type of a static slot or instance field. HiveVM slots are
 * dynamically typed, so hints are optional metadata the static
 * analyses use to resolve receivers (a real class file would carry
 * them in field descriptors). @c elem is the element klass when the
 * declared value is an array.
 */
struct TypeHint
{
    KlassId type = kNoKlass;
    KlassId elem = kNoKlass;
};

/** A klass: fields, methods, inheritance, transfer size. */
struct Klass
{
    std::string name;
    KlassId super = kNoKlass;
    std::vector<std::string> fields;   //!< instance field names
    std::vector<std::string> statics;  //!< static field names
    std::vector<MethodId> methods;
    std::vector<Annotation> annotations;
    bool packageable = false;          //!< implements Packageable
    uint32_t code_bytes = 1024;        //!< class-file size (transfer)
    /** Klasses this klass's code references (closure traversal). */
    std::vector<KlassId> references;
    /** Declared static/field types (lazily sized; see TypeHint). */
    std::vector<TypeHint> static_hints;
    std::vector<TypeHint> field_hints;
};

/** The immutable program: all klasses + methods + string pool. */
class Program
{
  public:
    /** Define a new klass; returns its id. Names must be unique. */
    KlassId addKlass(Klass klass);

    /** Define a method on @p owner; returns its id. */
    MethodId addMethod(KlassId owner, Method method);

    /** Intern a string literal; returns its pool index. */
    uint32_t internString(const std::string &s);

    /** Intern a method name for CallVirt dispatch. */
    NameId internName(const std::string &s);

    const Klass &klass(KlassId id) const;
    Klass &klass(KlassId id);
    const Method &method(MethodId id) const;
    Method &method(MethodId id);
    const std::string &stringAt(uint32_t idx) const;
    const std::string &nameAt(NameId id) const;

    KlassId findKlass(const std::string &name) const;
    /** Find "Klass.method"; kNoMethod when absent. */
    MethodId findMethod(const std::string &qualified) const;

    /**
     * Resolve a virtual call: look for @p name on @p klass,
     * semantically walking up the super chain. O(1): reads the
     * frozen per-klass vtable, (re)built lazily whenever the program
     * was mutated since the last freeze. Must agree with
     * resolveVirtualUncached() everywhere (tested as an oracle).
     * Defined inline below: this is the interpreter's hottest
     * lookup and must compile down to one indexed load.
     */
    MethodId resolveVirtual(KlassId klass, NameId name) const;

    /**
     * Reference resolver: the original string-comparing superclass
     * walk. Kept as the oracle for the frozen vtables (tests,
     * perf_hotpath's before/after microbench); not for hot paths.
     */
    MethodId resolveVirtualUncached(KlassId klass, NameId name) const;

    /**
     * Build the frozen dispatch tables now: per-klass flat
     * NameId -> MethodId vtables plus cached transitive field
     * counts. Idempotent; called lazily by resolveVirtual().
     * Programs are single-threaded (each trial/endpoint owns its
     * own), so the mutable rebuild needs no locking.
     */
    void freeze() const;
    /** True when the frozen tables match the current contents. */
    bool frozen() const { return frozen_epoch_ == mutation_epoch_; }

    /** Total instance field count including inherited fields. */
    uint32_t fieldCount(KlassId id) const;

    /** Declare the type of statics[klass][slot] (see TypeHint). */
    void hintStatic(KlassId klass, uint32_t slot, KlassId type,
                    KlassId elem = kNoKlass);
    /** Declare the type of instance field @p index on @p klass. */
    void hintField(KlassId klass, uint32_t index, KlassId type,
                   KlassId elem = kNoKlass);
    /** Hint for a static slot; default-constructed when undeclared. */
    TypeHint staticHint(KlassId klass, uint32_t slot) const;
    /** Hint for an instance field; walks the super chain. */
    TypeHint fieldHint(KlassId klass, uint32_t index) const;

    std::size_t klassCount() const { return klasses_.size(); }
    std::size_t methodCount() const { return methods_.size(); }
    std::size_t stringCount() const { return strings_.size(); }
    std::size_t nameCount() const { return names_.size(); }

    /** "Klass.method" for diagnostics; tolerates bad ids. */
    std::string qualifiedName(MethodId id) const;

    /** All method ids carrying the given annotation. */
    std::vector<MethodId>
    methodsWithAnnotation(const std::string &name) const;

  private:
    /** Any mutation invalidates the frozen dispatch tables. */
    void touch() { ++mutation_epoch_; }

    std::vector<Klass> klasses_;
    std::vector<Method> methods_;
    std::vector<std::string> strings_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, KlassId> klass_by_name_;
    std::unordered_map<std::string, MethodId> method_by_qname_;
    std::unordered_map<std::string, uint32_t> string_ids_;
    std::unordered_map<std::string, NameId> name_ids_;

    /** @name Frozen dispatch tables (see freeze())
     * Mutable: rebuilt lazily from const lookups; epoch comparison
     * makes staleness after any mutation detectable. */
    /// @{
    uint64_t mutation_epoch_ = 0;
    mutable uint64_t frozen_epoch_ = UINT64_MAX;
    /**
     * Row-major flat table: entry [klass * stride + name] is the
     * target method (kNoMethod if none). One contiguous allocation
     * keeps the hot lookup to a single indirection.
     */
    mutable std::vector<MethodId> vtable_flat_;
    mutable std::size_t vtable_stride_ = 0;
    /** Transitive instance field count per klass. */
    mutable std::vector<uint32_t> field_counts_;
    /// @}
};

inline MethodId
Program::resolveVirtual(KlassId klass_id, NameId name) const
{
    if (frozen_epoch_ != mutation_epoch_)
        freeze();
    // Single folded range check: klass_id and name are validated
    // together against the flat table (either out of range walks
    // past the end, since row klass_id ends at (klass_id+1)*stride).
    const std::size_t idx =
        static_cast<std::size_t>(klass_id) * vtable_stride_ + name;
    bh_assert(name < vtable_stride_ && idx < vtable_flat_.size(),
              "bad resolveVirtual(%u, %u)", klass_id, name);
    return vtable_flat_[idx];
}

} // namespace beehive::vm

#endif // BEEHIVE_VM_PROGRAM_H
