/**
 * @file
 * Tagged values and heap reference encoding.
 *
 * A Ref is a 64-bit heap address: bits [55:0] hold the byte offset
 * within a space, bits [61:56] the space id, and bit 63 the *remote*
 * mark. Exactly as in the paper's Figure 5, a reference whose most
 * significant bit is set denotes an object that still lives on
 * another endpoint; such addresses can never collide with local heap
 * references, and FaaS-side reference loads check the bit and fault.
 */

#ifndef BEEHIVE_VM_VALUE_H
#define BEEHIVE_VM_VALUE_H

#include <cstdint>
#include <cstring>

namespace beehive::vm {

/** Heap reference (0 = null). */
using Ref = uint64_t;

constexpr Ref kNullRef = 0;

/** The remote mark: MSB of the address (paper Section 4.1). */
constexpr uint64_t kRemoteBit = 1ULL << 63;

constexpr uint64_t kSpaceShift = 56;
constexpr uint64_t kSpaceMask = 0x3FULL << kSpaceShift;
constexpr uint64_t kOffsetMask = (1ULL << kSpaceShift) - 1;

/** Compose a local reference from space id and byte offset. */
constexpr Ref
makeRef(uint8_t space, uint64_t offset)
{
    return (static_cast<uint64_t>(space) << kSpaceShift) |
           (offset & kOffsetMask);
}

constexpr bool isRemote(Ref r) { return (r & kRemoteBit) != 0; }
constexpr Ref markRemote(Ref r) { return r | kRemoteBit; }
constexpr Ref stripRemote(Ref r) { return r & ~kRemoteBit; }
constexpr uint8_t refSpace(Ref r)
{
    return static_cast<uint8_t>((r & kSpaceMask) >> kSpaceShift);
}
constexpr uint64_t refOffset(Ref r) { return r & kOffsetMask; }

/** A tagged VM value: nil, 64-bit int, double, or reference. */
struct Value
{
    enum class Kind : uint8_t { Nil = 0, Int, Float, Ref };

    Kind kind = Kind::Nil;
    uint64_t bits = 0;

    static Value nil() { return Value{}; }

    static Value
    ofInt(int64_t v)
    {
        Value out;
        out.kind = Kind::Int;
        out.bits = static_cast<uint64_t>(v);
        return out;
    }

    static Value
    ofFloat(double v)
    {
        Value out;
        out.kind = Kind::Float;
        std::memcpy(&out.bits, &v, sizeof v);
        return out;
    }

    static Value
    ofRef(::beehive::vm::Ref r)
    {
        Value out;
        out.kind = Kind::Ref;
        out.bits = r;
        return out;
    }

    bool isNil() const { return kind == Kind::Nil; }
    bool isInt() const { return kind == Kind::Int; }
    bool isFloat() const { return kind == Kind::Float; }
    bool isRef() const { return kind == Kind::Ref; }

    int64_t asInt() const { return static_cast<int64_t>(bits); }

    double
    asFloat() const
    {
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    ::beehive::vm::Ref asRef() const { return bits; }

    /** Numeric coercion: ints promote to double. */
    double
    asNumber() const
    {
        return isFloat() ? asFloat() : static_cast<double>(asInt());
    }

    /** Truthiness: nil and 0 are false. */
    bool
    truthy() const
    {
        switch (kind) {
          case Kind::Nil: return false;
          case Kind::Int: return asInt() != 0;
          case Kind::Float: return asFloat() != 0.0;
          case Kind::Ref: return bits != kNullRef;
        }
        return false;
    }

    bool
    operator==(const Value &o) const
    {
        return kind == o.kind && bits == o.bits;
    }
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_VALUE_H
