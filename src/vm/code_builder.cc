#include "vm/code_builder.h"

#include "support/logging.h"

namespace beehive::vm {

CodeBuilder::CodeBuilder(Program &program, KlassId owner,
                         std::string name, uint16_t num_args)
    : program_(program), owner_(owner), name_(std::move(name)),
      num_args_(num_args), num_locals_(num_args)
{
}

CodeBuilder &
CodeBuilder::emit(Op op, int64_t a, int64_t b)
{
    bh_assert(!built_, "emit after build()");
    code_.push_back(Instr{op, a, b});
    return *this;
}

CodeBuilder::Label
CodeBuilder::newLabel()
{
    label_pos_.push_back(-1);
    return label_pos_.size() - 1;
}

CodeBuilder &
CodeBuilder::bind(Label l)
{
    bh_assert(l < label_pos_.size(), "unknown label");
    bh_assert(label_pos_[l] < 0, "label bound twice");
    label_pos_[l] = static_cast<int64_t>(code_.size());
    return *this;
}

CodeBuilder &
CodeBuilder::emitJump(Op op, Label l)
{
    bh_assert(l < label_pos_.size(), "unknown label");
    patches_.emplace_back(code_.size(), l);
    return emit(op, -1);
}

CodeBuilder &
CodeBuilder::pushF(double v)
{
    int64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return emit(Op::PushF, bits);
}

CodeBuilder &
CodeBuilder::pushStr(const std::string &s)
{
    return emit(Op::NewBytes, program_.internString(s));
}

CodeBuilder &
CodeBuilder::call(const std::string &qualified)
{
    MethodId id = program_.findMethod(qualified);
    bh_assert(id != kNoMethod, "unknown method %s", qualified.c_str());
    return emit(Op::Call, id);
}

CodeBuilder &
CodeBuilder::callSelf()
{
    self_patches_.push_back(code_.size());
    return emit(Op::Call, -1);
}

CodeBuilder &
CodeBuilder::callVirt(const std::string &name, uint16_t nargs)
{
    return emit(Op::CallVirt, program_.internName(name), nargs);
}

CodeBuilder &
CodeBuilder::annotate(const std::string &name)
{
    annotations_.push_back(Annotation{name});
    return *this;
}

CodeBuilder &
CodeBuilder::locals(uint16_t extra)
{
    num_locals_ = static_cast<uint16_t>(num_args_ + extra);
    return *this;
}

MethodId
CodeBuilder::build()
{
    bh_assert(!built_, "build() twice");
    built_ = true;
    for (auto &[pos, label] : patches_) {
        bh_assert(label_pos_[label] >= 0, "unbound label in %s",
                  name_.c_str());
        code_[pos].a = label_pos_[label];
    }
    Method m;
    m.name = name_;
    m.num_args = num_args_;
    m.num_locals = num_locals_;
    m.code = std::move(code_);
    m.annotations = std::move(annotations_);
    MethodId id = program_.addMethod(owner_, m);
    for (std::size_t pos : self_patches_)
        program_.method(id).code[pos].a = id;
    return id;
}

} // namespace beehive::vm
