/**
 * @file
 * Static working-set inference for endpoint roots.
 *
 * An Andersen-style, flow-insensitive points-to/reachability
 * analysis layered on the interprocedural framework (vm/analysis.h).
 * For one endpoint root it computes the two halves of the working
 * set that a fresh FaaS instance would otherwise fault in one
 * round trip at a time (the Table 5 fault storm):
 *
 *  - the **klass closure**: every klass the missing-code fallback
 *    can load while executing anything reachable from the root --
 *    method owners, `New`/`NewArr` operand klasses, static-slot
 *    owner klasses, and (when `NewBytes` is reachable) the ambient
 *    byte klass of the VM configuration; and
 *
 *  - the **abstract object footprint**: the static slots and
 *    (klass, field) access paths reachable code can read, expressed
 *    as a CaptureSet. resolveFootprint() grounds this abstraction
 *    against the *live server heap* at image-synthesis time,
 *    walking from the footprint's statics through exactly the
 *    fields the footprint admits and returning the concrete server
 *    objects a first boot could object-fault on.
 *
 * Dynamic dispatch is the one place the underlying call graph
 * under-approximates: a devirtualized CallVirt keeps only the
 * target that the *declared* receiver hint resolves to, but at run
 * time the receiver may be any subclass overriding the method. The
 * closure therefore re-expands every recorded VirtualSite over the
 * receiver hint's subclass cone. Sites the framework could not
 * bound at all (unknown receiver *and* unknown name, or bailed
 * methods) widen the footprint and are surfaced as counted *escape
 * hatches* so clients (hivelint pass 7) can distinguish "sound by
 * construction" from "sound modulo N unbounded dispatch sites".
 *
 * Soundness contract: for any execution of the root on an input
 * whose reads stay within the analyzed bytecode, the dynamic klass
 * fault set is a subset of the klass closure and the dynamic object
 * fault set is a subset of the resolved footprint -- modulo the
 * counted escape hatches. The inverse (precision) is *not*
 * promised: an over-approximate manifest costs overfetch bytes on
 * the restore path, never correctness, because plan revalidation
 * and the idempotent fetch path tolerate extra entries.
 */

#ifndef BEEHIVE_VM_REACHABILITY_ANALYSIS_H
#define BEEHIVE_VM_REACHABILITY_ANALYSIS_H

#include <cstdint>
#include <vector>

#include "vm/analysis.h"
#include "vm/program.h"
#include "vm/value.h"

namespace beehive::vm {

class VmContext;

/** Statically inferred working set of one endpoint root. */
struct ReachReport
{
    MethodId root = kNoMethod;
    /** Cone-expanded reachable method set, root included (sorted). */
    std::vector<MethodId> methods;
    /** Klass closure the missing-code fallback can load (sorted). */
    std::vector<KlassId> klasses;
    /** Abstract object footprint (statics + field access paths). */
    CaptureSet footprint;
    /** A reachable NewBytes allocates the ambient byte klass. */
    bool needs_bytes_klass = false;
    /** Dispatch sites the analysis could not bound (see file doc). */
    uint32_t escape_hatches = 0;
    /** Methods added beyond the devirtualized call-graph edges. */
    uint32_t cone_expansions = 0;
};

/**
 * The analysis. Constructed once per program over an existing
 * ProgramAnalysis (which must outlive it); per-root queries are
 * pure and deterministic.
 */
class ReachabilityAnalysis
{
  public:
    ReachabilityAnalysis(const Program &program,
                         const ProgramAnalysis &analysis);

    /** Infer the static working set of @p root. */
    ReachReport analyzeRoot(MethodId root) const;

    /**
     * Ground @p report's abstract footprint against the live server
     * heap: walk from its static slots through exactly the fields
     * the footprint admits (all elements of reachable arrays) and
     * return the concrete server objects, in deterministic BFS
     * order. The caller synthesizes these -- plus their header
     * klasses, which the object-fault path loads -- into a prefetch
     * manifest.
     */
    std::vector<Ref> resolveFootprint(const ReachReport &report,
                                      VmContext &server) const;

    /** @p k plus every transitive subclass of @p k (sorted). */
    const std::vector<KlassId> &subclassCone(KlassId k) const;

  private:
    const Program &program_;
    const ProgramAnalysis &analysis_;
    /** Per-klass subclass cone, self included. */
    std::vector<std::vector<KlassId>> cones_;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_REACHABILITY_ANALYSIS_H
