#include "vm/offload_analysis.h"

#include <algorithm>

#include "support/strutil.h"

namespace beehive::vm {

namespace {

bool
worse(OffloadClass a, OffloadClass b)
{
    return static_cast<uint8_t>(a) > static_cast<uint8_t>(b);
}

} // namespace

const char *
toString(OffloadClass c)
{
    switch (c) {
      case OffloadClass::OffloadSafe: return "offload-safe";
      case OffloadClass::NeedsFallback: return "needs-fallback";
      case OffloadClass::LocalOnly: return "local-only";
    }
    return "?";
}

std::string
toString(const RootReport &report, const Program &program)
{
    std::string s = strprintf(
        "%s: %s (%zu reachable method(s)",
        program.qualifiedName(report.root).c_str(),
        toString(report.klass), report.reachable.size());
    if (report.reasons.empty())
        return s + ")";
    const OffloadReason &top = report.reasons.front();
    s += strprintf("; %s+%u: %s",
                   program.qualifiedName(top.method).c_str(), top.pc,
                   top.message.c_str());
    if (report.reasons.size() > 1)
        s += strprintf(" and %zu more", report.reasons.size() - 1);
    return s + ")";
}

OffloadAnalysis::OffloadAnalysis(const Program &program,
                                 bool race_admission)
    : program_(program), analysis_(program)
{
    if (race_admission)
        races_ = std::make_unique<RaceAnalysis>(program_, analysis_);
}

RootReport
OffloadAnalysis::classifyRoot(MethodId root) const
{
    RootReport report;
    report.root = root;
    if (root >= program_.methodCount())
        return report;

    report.reachable = analysis_.reachableFrom(root);
    for (MethodId id : report.reachable) {
        for (const EffectSite &site :
             analysis_.methodSummary(id).sites) {
            if (races_ &&
                site.kind == EffectSite::Kind::SharedMonitor &&
                races_->vacuousLocks().count(site.token) != 0) {
                // The detector proved this monitor guards no
                // shared-written state: nothing to synchronize.
                ++report.vacuous_monitors;
                continue;
            }
            OffloadReason r;
            r.demands = site.demand == EffectDemand::LocalOnly
                            ? OffloadClass::LocalOnly
                            : OffloadClass::NeedsFallback;
            r.method = site.method;
            r.pc = site.pc;
            r.message = site.message;
            if (worse(r.demands, report.klass))
                report.klass = r.demands;
            report.reasons.push_back(std::move(r));
        }
    }
    std::stable_sort(report.reasons.begin(), report.reasons.end(),
                     [](const OffloadReason &a,
                        const OffloadReason &b) {
                         return worse(a.demands, b.demands);
                     });
    return report;
}

} // namespace beehive::vm
