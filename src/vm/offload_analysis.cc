#include "vm/offload_analysis.h"

#include <algorithm>
#include <deque>
#include <set>

#include "support/strutil.h"

namespace beehive::vm {

namespace {

const char *
categoryName(NativeCategory c)
{
    switch (c) {
      case NativeCategory::PureOnHeap: return "pure-on-heap";
      case NativeCategory::HiddenState: return "hidden-state";
      case NativeCategory::Network: return "network";
      case NativeCategory::Stateless: return "stateless";
    }
    return "?";
}

/** Keep only the strongest reason per (method, message) shape. */
bool
worse(OffloadClass a, OffloadClass b)
{
    return static_cast<uint8_t>(a) > static_cast<uint8_t>(b);
}

} // namespace

const char *
toString(OffloadClass c)
{
    switch (c) {
      case OffloadClass::OffloadSafe: return "offload-safe";
      case OffloadClass::NeedsFallback: return "needs-fallback";
      case OffloadClass::LocalOnly: return "local-only";
    }
    return "?";
}

std::string
toString(const RootReport &report, const Program &program)
{
    std::string s = strprintf(
        "%s: %s (%zu reachable method(s)",
        program.qualifiedName(report.root).c_str(),
        toString(report.klass), report.reachable.size());
    if (report.reasons.empty())
        return s + ")";
    const OffloadReason &top = report.reasons.front();
    s += strprintf("; %s+%u: %s",
                   program.qualifiedName(top.method).c_str(), top.pc,
                   top.message.c_str());
    if (report.reasons.size() > 1)
        s += strprintf(" and %zu more", report.reasons.size() - 1);
    return s + ")";
}

OffloadAnalysis::OffloadAnalysis(const Program &program)
    : program_(program)
{
    for (MethodId id = 0; id < program_.methodCount(); ++id)
        methods_by_name_[program_.method(id).name].push_back(id);
}

RootReport
OffloadAnalysis::classifyRoot(MethodId root) const
{
    RootReport report;
    report.root = root;
    if (root >= program_.methodCount())
        return report;

    std::set<MethodId> visited;
    std::deque<MethodId> work;
    visited.insert(root);
    work.push_back(root);

    auto reason = [&](OffloadClass demands, MethodId method,
                      uint32_t pc, std::string msg) {
        if (worse(demands, report.klass))
            report.klass = demands;
        OffloadReason r;
        r.demands = demands;
        r.method = method;
        r.pc = pc;
        r.message = std::move(msg);
        report.reasons.push_back(std::move(r));
    };

    // Shared by CallNative sites and natives reached through
    // CallVirt widening.
    auto classifyNative = [&](MethodId native_id, MethodId site,
                              uint32_t pc) {
        const Method &native = program_.method(native_id);
        switch (native.native_category) {
          case NativeCategory::PureOnHeap:
          case NativeCategory::Stateless:
            break; // offload-safe
          case NativeCategory::HiddenState:
          case NativeCategory::Network: {
            bool packageable =
                native.owner != kNoKlass &&
                program_.klass(native.owner).packageable;
            if (packageable)
                reason(OffloadClass::NeedsFallback, site, pc,
                       strprintf("calls %s native %s on Packageable "
                                 "%s (fallback/pack handles it)",
                                 categoryName(
                                     native.native_category),
                                 native.name.c_str(),
                                 program_.klass(native.owner)
                                     .name.c_str()));
            else
                reason(OffloadClass::LocalOnly, site, pc,
                       strprintf("calls %s native %s on "
                                 "non-Packageable owner -- off-heap "
                                 "state cannot be rebuilt on FaaS",
                                 categoryName(
                                     native.native_category),
                                 native.name.c_str()));
            break;
          }
        }
    };

    while (!work.empty()) {
        MethodId id = work.front();
        work.pop_front();
        const Method &m = program_.method(id);

        if (m.is_native) {
            // Reached through CallVirt widening (CallNative sites
            // classify their target before enqueueing it).
            classifyNative(id, id, 0);
            continue;
        }

        for (uint32_t pc = 0; pc < m.code.size(); ++pc) {
            const Instr &in = m.code[pc];
            switch (in.op) {
              case Op::PutStatic:
                reason(OffloadClass::NeedsFallback, id, pc,
                       strprintf("writes static %s.%s (needs "
                                 "write-back fallback)",
                                 program_
                                     .klass(static_cast<KlassId>(
                                         in.a))
                                     .name.c_str(),
                                 program_
                                     .klass(static_cast<KlassId>(
                                         in.a))
                                     .statics[static_cast<
                                         std::size_t>(in.b)]
                                     .c_str()));
                break;
              case Op::MonitorEnter:
                reason(OffloadClass::NeedsFallback, id, pc,
                       "acquires a monitor (needs cross-endpoint "
                       "synchronization fallback)");
                break;
              case Op::GetVolatile:
              case Op::PutVolatile:
                reason(OffloadClass::NeedsFallback, id, pc,
                       "touches a volatile field (needs release "
                       "consistency sync)");
                break;
              case Op::Call: {
                MethodId callee = static_cast<MethodId>(in.a);
                if (callee < program_.methodCount() &&
                    visited.insert(callee).second)
                    work.push_back(callee);
                break;
              }
              case Op::CallNative: {
                MethodId callee = static_cast<MethodId>(in.a);
                if (callee >= program_.methodCount())
                    break;
                if (visited.insert(callee).second)
                    classifyNative(callee, id, pc);
                break;
              }
              case Op::CallVirt: {
                if (static_cast<std::size_t>(in.a) >=
                    program_.nameCount())
                    break;
                const std::string &name =
                    program_.nameAt(static_cast<NameId>(in.a));
                auto it = methods_by_name_.find(name);
                if (it == methods_by_name_.end()) {
                    reason(OffloadClass::NeedsFallback, id, pc,
                           strprintf("virtual call %s resolves to "
                                     "nothing statically",
                                     name.c_str()));
                    break;
                }
                for (MethodId callee : it->second) {
                    if (visited.insert(callee).second)
                        work.push_back(callee);
                }
                break;
              }
              default:
                break;
            }
        }
    }

    report.reachable.assign(visited.begin(), visited.end());
    std::sort(report.reasons.begin(), report.reasons.end(),
              [](const OffloadReason &a, const OffloadReason &b) {
                  return worse(a.demands, b.demands);
              });
    return report;
}

} // namespace beehive::vm
