#include "vm/race_analysis.h"

#include <algorithm>
#include <deque>

#include "support/logging.h"
#include "support/strutil.h"

namespace beehive::vm {

namespace {

std::vector<LockToken>
sortedUnique(std::vector<LockToken> v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

std::vector<LockToken>
setUnion(const std::vector<LockToken> &a,
         const std::vector<LockToken> &b)
{
    std::vector<LockToken> out;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

std::vector<LockToken>
setIntersect(const std::vector<LockToken> &a,
             const std::vector<LockToken> &b)
{
    std::vector<LockToken> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

} // namespace

const char *
toString(GuardState s)
{
    switch (s) {
      case GuardState::ThreadLocal: return "thread-local";
      case GuardState::ReadShared: return "read-shared";
      case GuardState::ConsistentlyGuarded:
        return "consistently-guarded";
      case GuardState::GuardedByUnknown: return "guarded-by-unknown";
      case GuardState::Unguarded: return "unguarded";
    }
    return "?";
}

bool
RaceScope::operator<(const RaceScope &o) const
{
    return std::tie(kind, klass, slot) <
           std::tie(o.kind, o.klass, o.slot);
}

bool
RaceScope::operator==(const RaceScope &o) const
{
    return kind == o.kind && klass == o.klass && slot == o.slot;
}

std::string
toString(const RaceScope &scope, const Program &program)
{
    const bool known = scope.klass != kNoKlass &&
                       scope.klass < program.klassCount();
    std::string owner =
        known ? program.klass(scope.klass).name : "<any>";
    switch (scope.kind) {
      case AccessRecord::Scope::Field:
        if (known &&
            scope.slot < program.klass(scope.klass).fields.size())
            return owner + "." +
                   program.klass(scope.klass).fields[scope.slot];
        return strprintf("%s.field[%u]", owner.c_str(), scope.slot);
      case AccessRecord::Scope::Static:
        if (known &&
            scope.slot < program.klass(scope.klass).statics.size())
            return "static " + owner + "." +
                   program.klass(scope.klass).statics[scope.slot];
        return strprintf("static[%u][%u]", scope.klass, scope.slot);
      case AccessRecord::Scope::Element:
        return owner + "[*]";
    }
    return "?";
}

std::string
ScopeReport::describe(const Program &program) const
{
    std::string guards;
    for (const LockToken &t : candidate) {
        if (!guards.empty())
            guards += ", ";
        guards += toString(t, program);
    }
    std::string where =
        method == kNoMethod
            ? std::string("<nowhere>")
            : strprintf("%s+%u",
                        program.qualifiedName(method).c_str(), pc);
    return strprintf(
        "%s is %s (%u shared accesses, %u shared writes, "
        "candidate lockset {%s}) at %s",
        toString(scope, program).c_str(), toString(state),
        shared_accesses, shared_writes, guards.c_str(),
        where.c_str());
}

// ---- RaceAnalysis ------------------------------------------------

RaceAnalysis::RaceAnalysis(const Program &program,
                           const ProgramAnalysis &analysis)
    : program_(program), analysis_(analysis)
{
    for (MethodId id = 0; id < program_.methodCount(); ++id)
        if (!program_.method(id).is_native &&
            analysis_.methodSummary(id).unresolved_virtual)
            incomplete_ = true;
    computeContexts();
    computeSharedKlasses();
    classify();
}

const std::vector<LockToken> &
RaceAnalysis::contextLockset(MethodId id) const
{
    bh_assert(id < context_.size(), "bad method id");
    return context_[id];
}

/**
 * Top-down fixpoint: context(m) = ⋂ over call sites reaching m of
 * (context(caller) ∪ locks held at the site). Entry methods --
 * annotated request handlers plus methods nothing calls -- start
 * from the empty set; everything else starts at ⊤ and only ever
 * shrinks, so the worklist terminates.
 */
void
RaceAnalysis::computeContexts()
{
    const std::size_t n = program_.methodCount();
    context_.assign(n, {});
    context_top_.assign(n, true);
    context_unknown_.assign(n, false);

    std::vector<uint32_t> indegree(n, 0);
    for (MethodId id = 0; id < n; ++id)
        for (MethodId callee : analysis_.callGraph().callees[id])
            ++indegree[callee];

    std::deque<MethodId> work;
    for (MethodId id = 0; id < n; ++id) {
        if (program_.method(id).is_native)
            continue;
        if (indegree[id] == 0 ||
            program_.method(id).hasAnnotation("RequestMapping")) {
            context_top_[id] = false;
            work.push_back(id);
        }
    }

    while (!work.empty()) {
        MethodId m = work.front();
        work.pop_front();
        for (const CallSiteLocks &cs : analysis_.callSiteLocks(m)) {
            std::vector<LockToken> eff =
                setUnion(context_[m], sortedUnique(cs.held));
            bool eff_unknown =
                context_unknown_[m] || cs.held_unknown;
            for (MethodId c : cs.callees) {
                if (context_top_[c]) {
                    context_top_[c] = false;
                    context_[c] = eff;
                    context_unknown_[c] = eff_unknown;
                    work.push_back(c);
                    continue;
                }
                std::vector<LockToken> next =
                    setIntersect(context_[c], eff);
                bool next_unknown =
                    context_unknown_[c] && eff_unknown;
                if (next != context_[c] ||
                    next_unknown != context_unknown_[c]) {
                    context_[c] = std::move(next);
                    context_unknown_[c] = next_unknown;
                    work.push_back(c);
                }
            }
        }
    }
}

/**
 * Klasses whose instances can be reached by more than one thread:
 * the closure, over field type hints, subclassing, and observed
 * stores, of every klass a static slot can hold. The hints play the
 * role of field descriptors in a real class file; an object of a
 * klass outside this set can only be reached through a chain the
 * program never declares nor was seen building, which the detector
 * deliberately trusts (documented in DESIGN.md §12).
 */
void
RaceAnalysis::computeSharedKlasses()
{
    // Observed heap stores: receiver klass -> stored klasses.
    // Writes through a statically unknown receiver might target any
    // shared object, so their stored klasses seed the closure too.
    std::map<KlassId, std::set<KlassId>> stores;
    std::deque<KlassId> work;
    auto push = [&](KlassId k) {
        if (k == kNoKlass || k >= program_.klassCount())
            return;
        if (shared_klasses_.insert(k).second)
            work.push_back(k);
    };

    for (MethodId id = 0; id < program_.methodCount(); ++id) {
        if (program_.method(id).is_native)
            continue;
        for (const AccessRecord &rec : analysis_.accesses(id)) {
            if (!rec.is_write || rec.stored_klass == kNoKlass)
                continue;
            if (rec.scope == AccessRecord::Scope::Static ||
                rec.klass == kNoKlass)
                push(rec.stored_klass);
            else if (!rec.receiver_local)
                stores[rec.klass].insert(rec.stored_klass);
        }
    }

    for (KlassId k = 0; k < program_.klassCount(); ++k)
        for (uint32_t s = 0;
             s < program_.klass(k).statics.size(); ++s) {
            TypeHint h = program_.staticHint(k, s);
            push(h.type);
            push(h.elem);
        }

    auto derives = [&](KlassId k, KlassId base) {
        for (; k != kNoKlass; k = program_.klass(k).super)
            if (k == base)
                return true;
        return false;
    };

    while (!work.empty()) {
        KlassId k = work.front();
        work.pop_front();
        for (uint32_t i = 0; i < program_.fieldCount(k); ++i) {
            TypeHint h = program_.fieldHint(k, i);
            push(h.type);
            push(h.elem);
        }
        auto it = stores.find(k);
        if (it != stores.end())
            for (KlassId stored : it->second)
                push(stored);
        // A slot declared to hold k may hold any subclass of k.
        for (KlassId sub = 0; sub < program_.klassCount(); ++sub)
            if (sub != k && derives(sub, k))
                push(sub);
    }
}

void
RaceAnalysis::classify()
{
    struct Acc
    {
        uint32_t shared_accesses = 0;
        uint32_t shared_writes = 0;
        bool candidate_init = false;
        std::vector<LockToken> candidate;
        /** Some shared access held a lock of unknown identity, so
         * an empty candidate set may be a modeling artifact. */
        bool any_unknown = false;
        bool any_access = false;
        /** Example sites. */
        MethodId any_method = kNoMethod;
        uint32_t any_pc = 0;
        MethodId bare_method = kNoMethod; //!< lockless shared write
        uint32_t bare_pc = 0;
    };
    std::map<RaceScope, Acc> accs;

    // Lock -> scopes it was ever observed guarding, plus a global
    // flag when a shared-written scope was accessed under a lock of
    // unknown identity (that lock may alias anything, so no token
    // can be proven vacuous).
    std::map<LockToken, std::set<RaceScope>> guarded_scopes;
    bool unknown_guard_on_shared_write = false;

    for (MethodId id = 0; id < program_.methodCount(); ++id) {
        if (program_.method(id).is_native || context_top_[id])
            continue; // native or unreachable (dead) code
        for (const AccessRecord &rec : analysis_.accesses(id)) {
            RaceScope scope{rec.scope, rec.klass, rec.slot};
            Acc &acc = accs[scope];
            acc.any_access = true;

            const bool shared =
                !rec.receiver_local &&
                (rec.scope == AccessRecord::Scope::Static ||
                 rec.klass == kNoKlass ||
                 shared_klasses_.count(rec.klass) != 0);
            if (!shared)
                continue;

            std::vector<LockToken> eff =
                setUnion(sortedUnique(rec.held), context_[id]);
            const bool eff_unknown =
                rec.held_unknown || context_unknown_[id];

            ++acc.shared_accesses;
            if (rec.is_write)
                ++acc.shared_writes;
            if (acc.any_method == kNoMethod) {
                acc.any_method = id;
                acc.any_pc = rec.pc;
            }
            for (const LockToken &t : eff)
                guarded_scopes[t].insert(scope);
            if (rec.is_write && eff_unknown)
                unknown_guard_on_shared_write = true;

            // Volatile accesses are their own synchronization
            // (acquire/release pairs); they neither refine nor
            // empty the candidate lockset.
            if (rec.is_volatile)
                continue;
            if (!acc.candidate_init) {
                acc.candidate_init = true;
                acc.candidate = eff;
            } else {
                acc.candidate = setIntersect(acc.candidate, eff);
            }
            if (eff_unknown)
                acc.any_unknown = true;
            if (eff.empty() && !eff_unknown && rec.is_write &&
                acc.bare_method == kNoMethod) {
                acc.bare_method = id;
                acc.bare_pc = rec.pc;
            }
        }
    }

    for (const auto &[scope, acc] : accs) {
        ScopeReport rep;
        rep.scope = scope;
        rep.shared_accesses = acc.shared_accesses;
        rep.shared_writes = acc.shared_writes;
        rep.candidate = acc.candidate;
        rep.method = acc.any_method;
        rep.pc = acc.any_pc;
        if (acc.shared_accesses == 0) {
            rep.state = GuardState::ThreadLocal;
        } else if (acc.shared_writes == 0) {
            rep.state = GuardState::ReadShared;
        } else if (acc.candidate_init && !acc.candidate.empty()) {
            rep.state = GuardState::ConsistentlyGuarded;
        } else if (acc.any_unknown) {
            // The empty intersection may be an aliasing artifact:
            // an unknown lock could denote the same monitor.
            rep.state = GuardState::GuardedByUnknown;
        } else {
            rep.state = GuardState::Unguarded;
            if (acc.bare_method != kNoMethod) {
                rep.method = acc.bare_method;
                rep.pc = acc.bare_pc;
            }
        }
        state_of_[scope] = rep.state;
        scopes_.push_back(rep);
        if (rep.state == GuardState::Unguarded)
            findings_.push_back(rep);
    }

    // A lock is vacuous when nothing it guards is ever written
    // while shared: eliding its cross-endpoint fallback cannot
    // change observable behavior. Widened results forfeit the
    // optimization wholesale -- admission must stay sound.
    if (incomplete_ || unknown_guard_on_shared_write)
        return;
    for (const auto &[token, scopes] : guarded_scopes) {
        bool vacuous = true;
        for (const RaceScope &scope : scopes) {
            GuardState s = state_of_[scope];
            if (s != GuardState::ThreadLocal &&
                s != GuardState::ReadShared)
                vacuous = false;
        }
        if (vacuous)
            vacuous_.insert(token);
    }
}

bool
RaceAnalysis::reportedAt(const RaceScope &scope) const
{
    auto reported = [&](const RaceScope &s) {
        auto it = state_of_.find(s);
        return it != state_of_.end() &&
               (it->second == GuardState::GuardedByUnknown ||
                it->second == GuardState::Unguarded);
    };
    if (reported(scope))
        return true;
    if (scope.kind == AccessRecord::Scope::Static)
        return false;
    // The static side may have seen the access through a declared
    // supertype of the runtime klass, or lost the klass entirely.
    for (KlassId k = scope.klass;
         k != kNoKlass && k < program_.klassCount();
         k = program_.klass(k).super)
        if (reported(RaceScope{scope.kind, k, scope.slot}))
            return true;
    return reported(RaceScope{scope.kind, kNoKlass,
                              scope.kind ==
                                      AccessRecord::Scope::Element
                                  ? 0
                                  : scope.slot});
}

} // namespace beehive::vm
