/**
 * @file
 * Native method registry.
 *
 * Web frameworks lean heavily on native invocations (paper Table 2:
 * a single pybbs request makes >260k of them). HiveVM models native
 * methods as C++ handlers registered by id. Each handler is tagged
 * with the paper's four categories -- pure on-heap, hidden state,
 * network, and stateless -- which drive BeeHive's offloadability
 * policy (Section 3.2): pure/stateless run anywhere, hidden-state
 * natives need a *packed* Packageable receiver on FaaS, and network
 * natives route through the connection proxy.
 */

#ifndef BEEHIVE_VM_NATIVES_H
#define BEEHIVE_VM_NATIVES_H

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "vm/program.h"
#include "vm/value.h"

namespace beehive::vm {

class VmContext;

/** Outcome of a native handler. */
struct NativeResult
{
    /** Return value pushed to the caller's stack. */
    Value ret = Value::nil();

    /** CPU nanoseconds this native consumed. */
    double cost_ns = 0.0;

    /**
     * When set, the interpreter suspends with an External request
     * carrying this payload instead of completing the call; the
     * endpoint driver performs the operation (e.g. a database round
     * trip via the proxy) and resumes with the real return value.
     * Handlers must not mutate the heap before requesting external
     * completion.
     */
    std::optional<std::any> external;
};

/** A native method implementation. */
using NativeFn =
    std::function<NativeResult(VmContext &, std::vector<Value> &)>;

/** Registered native method. */
struct NativeMethod
{
    std::string name;
    NativeCategory category = NativeCategory::PureOnHeap;
    NativeFn fn;
};

/** Id-keyed registry of native methods for one Program. */
class NativeRegistry
{
  public:
    /** Register a native; returns its id. */
    uint32_t add(std::string name, NativeCategory category, NativeFn fn);

    const NativeMethod &get(uint32_t id) const;
    bool has(uint32_t id) const { return id < natives_.size(); }
    std::size_t size() const { return natives_.size(); }

    /** Lookup by name (kNoNative when absent). */
    static constexpr uint32_t kNoNative = UINT32_MAX;
    uint32_t find(const std::string &name) const;

  private:
    std::vector<NativeMethod> natives_;
    std::map<std::string, uint32_t> by_name_;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_NATIVES_H
