/**
 * @file
 * Interprocedural dataflow framework over HiveVM bytecode.
 *
 * The framework builds a call graph (devirtualizing CallVirt sites
 * through an intra-method abstract interpretation where the receiver
 * klass is statically known), condenses it into strongly connected
 * components, and propagates per-method *effect summaries* bottom-up
 * in SCC order. Recursive cliques are widened by collapsing every
 * member of the SCC onto one fixed point, which is sound because all
 * summary domains are finite union lattices.
 *
 * Three client analyses are layered on top:
 *
 *  - **Escape/capture analysis** (captureForRoot): which statics and
 *    which (klass, field) pairs can be *read* by anything reachable
 *    from an endpoint root. The closure builder uses the result to
 *    prune object-graph edges whose target field is provably never
 *    read off-server, slimming serialized closures. Objects the
 *    offloaded code allocates itself never need capture, and the
 *    missing-data fallback makes over-pruning merely slow, never
 *    wrong -- but the analysis is still conservative so that the
 *    fallback is not exercised by design.
 *
 *  - **Effect summaries** (transitiveSummary): per-method static
 *    reads/writes, monitor acquisitions (with lock identities),
 *    volatile touches, and hidden-state native calls. Monitors and
 *    volatiles on objects that are provably method-local (freshly
 *    allocated, never escaping) are *elided*: they cannot be
 *    contended across endpoints, so they do not demand a
 *    synchronization fallback. This upgrades roots the coarse PR 1
 *    buckets classified needs-fallback to offload-safe.
 *
 *  - **Lock-order analysis** (lockCycles): a program-wide lock graph
 *    with an edge A -> B whenever B can be acquired while A is held
 *    (directly or through a call), reported as potential deadlock
 *    cycles. BeeHive synchronizes monitors across local and offloaded
 *    frames, so an ABBA inversion can wedge both endpoints at once.
 *
 * All results are exposed through hivelint and run at server load
 * time next to the bytecode verifier.
 */

#ifndef BEEHIVE_VM_ANALYSIS_H
#define BEEHIVE_VM_ANALYSIS_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "vm/program.h"

namespace beehive::vm {

/**
 * Identity of a lock as far as the static analysis can tell. Two
 * tokens compare equal when they *may* denote the same runtime
 * monitor; Unknown tokens never participate in the lock graph.
 */
struct LockToken
{
    enum class Kind : uint8_t
    {
        Unknown,     //!< identity lost (joins, call results, args)
        AllocSite,   //!< object allocated at (method, pc)
        StaticSlot,  //!< object stored in statics[klass][slot]
        StaticElem,  //!< element of the array in statics[klass][slot]
    };

    Kind kind = Kind::Unknown;
    MethodId method = kNoMethod;  //!< AllocSite only
    uint32_t pc = 0;              //!< AllocSite only
    KlassId klass = kNoKlass;     //!< StaticSlot / StaticElem
    uint32_t slot = 0;            //!< StaticSlot / StaticElem

    bool operator<(const LockToken &o) const;
    bool operator==(const LockToken &o) const;
};

std::string toString(const LockToken &token, const Program &program);

/** How strongly an effect site constrains offloading. */
enum class EffectDemand : uint8_t
{
    Fallback,   //!< offloadable with a runtime fallback
    LocalOnly,  //!< must stay on the server
};

/** One bytecode site whose effect demands a fallback (with its pc). */
struct EffectSite
{
    enum class Kind : uint8_t
    {
        StaticWrite,
        SharedMonitor,
        SharedVolatile,
        HiddenNative,
        NetworkNative,
        UnresolvedVirtual,
    };

    Kind kind = Kind::StaticWrite;
    EffectDemand demand = EffectDemand::Fallback;
    MethodId method = kNoMethod;
    uint32_t pc = 0;
    std::string message;
    /** SharedMonitor only: identity of the acquired lock. */
    LockToken token;
};

/**
 * One static/field/element access site with the lockset held around
 * it intra-procedurally. The race detector (vm/race_analysis.h)
 * combines these with call-site lock contexts to compute the full
 * interprocedural lockset per access.
 */
struct AccessRecord
{
    enum class Scope : uint8_t
    {
        Field,   //!< instance field: (receiver klass, field index)
        Static,  //!< static slot: (klass, slot)
        Element, //!< array element: (array klass, all indices)
    };

    Scope scope = Scope::Field;
    /** Receiver/array/static klass; kNoKlass = statically unknown. */
    KlassId klass = kNoKlass;
    uint32_t slot = 0;
    bool is_write = false;
    bool is_volatile = false;
    /** Receiver provably fresh and non-escaping (thread-local). */
    bool receiver_local = false;
    /** Writes only: klass of the stored value when known. Feeds the
     * race detector's reachable-from-statics sharing closure. */
    KlassId stored_klass = kNoKlass;
    uint32_t pc = 0;
    /** Known-identity, non-elided locks held at the access. */
    std::vector<LockToken> held;
    /** A lock of unknown identity is also held. */
    bool held_unknown = false;
};

/**
 * One bytecode call site with the locks held around it: the edges
 * the top-down context-lockset propagation walks. Recorded for
 * every resolved bytecode call, held or not.
 */
struct CallSiteLocks
{
    std::vector<LockToken> held;
    bool held_unknown = false;
    std::vector<MethodId> callees;
};

/**
 * One devirtualized CallVirt site. The call graph keeps only the
 * single target the statically known receiver klass resolves to;
 * clients that must not under-approximate dynamic dispatch (the
 * reachability closure feeding prefetch manifests) re-expand the
 * site over every subclass of the receiver hint, because the hint
 * may be a superclass of the runtime receiver and each subclass can
 * override the callee.
 */
struct VirtualSite
{
    uint32_t pc = 0;
    NameId name = 0;              //!< the virtual method name
    KlassId receiver = kNoKlass;  //!< statically known receiver klass
};

/**
 * What one method (intra) or one call subtree (transitive) does to
 * state outside its own frame. Every domain is a finite set, so
 * unioning summaries is the lattice join.
 */
struct EffectSummary
{
    std::set<std::pair<KlassId, uint32_t>> statics_read;
    std::set<std::pair<KlassId, uint32_t>> statics_written;
    /** Instance field reads attributed to a receiver klass. */
    std::set<std::pair<KlassId, uint32_t>> fields_read;
    /** Field reads whose receiver klass is statically unknown. */
    std::set<uint32_t> fields_read_any_klass;
    /** Klasses natives read from C++ (all their fields captured). */
    std::set<KlassId> klasses_fully_read;
    /** Monitors acquired that shared state can observe. */
    std::set<LockToken> locks;
    /** Monitor pairs proven method-local and elided. */
    uint32_t monitors_elided = 0;
    /** Volatile accesses proven method-local and elided. */
    uint32_t volatiles_elided = 0;
    bool touches_shared_volatile = false;
    /** A CallVirt site resolved to nothing statically. */
    bool unresolved_virtual = false;
    /** Fallback-demanding sites (intra summaries only). */
    std::vector<EffectSite> sites;

    /** Union @p o into this summary (sites are not merged). */
    void join(const EffectSummary &o);
};

/**
 * Minimal capture set for one offload root: the statics and fields
 * that offloaded execution can read and which therefore must ship in
 * (or be reachable from) the closure.
 */
struct CaptureSet
{
    std::set<std::pair<KlassId, uint32_t>> statics;
    std::set<std::pair<KlassId, uint32_t>> fields;
    std::set<uint32_t> any_klass_fields;
    std::set<KlassId> full_klasses;
    /** Analysis widened to "everything" (unresolved virtual etc). */
    bool all_fields = false;

    /** May field @p index of an object of @p klass be read? */
    bool containsField(KlassId klass, uint32_t index) const;
    /** Number of distinct field facts, for reporting. */
    std::size_t fieldFactCount() const;
};

std::string toString(const CaptureSet &capture, const Program &program);

/** A cycle in the lock graph: a potential deadlock. */
struct LockCycle
{
    std::vector<LockToken> tokens;

    std::string describe(const Program &program) const;
};

/** Call graph with devirtualized edges and bottom-up SCC order. */
struct CallGraph
{
    /** Bytecode callees per method (deduplicated, sorted). */
    std::vector<std::vector<MethodId>> callees;
    /** Native callees per method (deduplicated, sorted). */
    std::vector<std::vector<MethodId>> natives;
    /** SCC id per method; ids are numbered in bottom-up order. */
    std::vector<uint32_t> scc_of;
    /** SCC member lists, index = SCC id (bottom-up). */
    std::vector<std::vector<MethodId>> sccs;
};

/**
 * The framework: builds everything eagerly in the constructor
 * (intra-method abstract interpretation, call graph, SCC
 * condensation, transitive summaries, lock graph). The program must
 * outlive the analysis.
 */
class ProgramAnalysis
{
  public:
    explicit ProgramAnalysis(const Program &program);

    const CallGraph &callGraph() const { return cg_; }

    /** Effects of @p id's own bytecode only (callees excluded). */
    const EffectSummary &methodSummary(MethodId id) const;

    /** Effects of @p id plus everything it can transitively call. */
    const EffectSummary &transitiveSummary(MethodId id) const;

    /**
     * Every method (bytecode and native) reachable from @p root,
     * root included, in deterministic (sorted) order.
     */
    std::vector<MethodId> reachableFrom(MethodId root) const;

    /** Minimal capture set for offloading @p root. */
    CaptureSet captureForRoot(MethodId root) const;

    /** Potential deadlock cycles in the program-wide lock graph. */
    const std::vector<LockCycle> &lockCycles() const { return cycles_; }

    /** Every static/field/element access site of @p id's bytecode. */
    const std::vector<AccessRecord> &accesses(MethodId id) const;

    /** Resolved bytecode call sites of @p id with held locksets. */
    const std::vector<CallSiteLocks> &callSiteLocks(MethodId id) const;

    /** Devirtualized CallVirt sites of @p id's bytecode. */
    const std::vector<VirtualSite> &virtualSites(MethodId id) const;

    /** Edges of the lock graph, for diagnostics. */
    const std::map<LockToken, std::set<LockToken>> &lockGraph() const
    {
        return lock_edges_;
    }

  private:
    void analyzeMethod(MethodId id);
    void condense();
    void computeTransitive();
    void buildLockGraph();

    const Program &program_;
    CallGraph cg_;
    /** name -> every method with that name (CallVirt widening). */
    std::map<std::string, std::vector<MethodId>> methods_by_name_;
    std::vector<EffectSummary> intra_;
    std::vector<EffectSummary> transitive_;
    std::vector<std::vector<AccessRecord>> accesses_;
    /** Call sites with their held locksets (all resolved calls). */
    std::vector<std::vector<CallSiteLocks>> locked_calls_;
    /** Devirtualized CallVirt sites per method. */
    std::vector<std::vector<VirtualSite>> virt_sites_;
    /** Intra-method lock nesting edges. */
    std::map<LockToken, std::set<LockToken>> lock_edges_;
    std::vector<LockCycle> cycles_;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_ANALYSIS_H
