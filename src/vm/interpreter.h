/**
 * @file
 * The steppable bytecode interpreter.
 *
 * The interpreter keeps its call frames in an explicit stack and can
 * suspend at any instruction boundary, returning a typed Suspend
 * describing why:
 *
 *   - Quantum: the configured compute budget was consumed; the
 *     endpoint driver charges the accumulated cost to the simulated
 *     CPU and resumes, giving processor-sharing fidelity;
 *   - ClassFault / ObjectFault: the paper's missing-code and
 *     missing-data fallbacks (Section 3.1); the instruction is NOT
 *     advanced, so resolving the fault and calling run() retries it;
 *   - NativeFallback: a native call this endpoint may not run
 *     locally (Section 3.2);
 *   - MonitorAcquire: the monitor's last owner is another endpoint,
 *     so a JMM-style synchronization is required (Section 4.2);
 *   - External: a native requested an external operation (e.g. a
 *     database round trip via the proxy); resume with
 *     resumeExternal() once the driver has the result;
 *   - Done: the root method returned.
 *
 * This explicit suspension design is also what makes stack
 * snapshots for failure recovery (Section 4.5) straightforward:
 * frames are plain data.
 */

#ifndef BEEHIVE_VM_INTERPRETER_H
#define BEEHIVE_VM_INTERPRETER_H

#include <any>
#include <cstdint>
#include <set>
#include <vector>

#include "vm/context.h"
#include "vm/program.h"
#include "vm/value.h"

namespace beehive::vm {

/** One activation record. Plain data: copyable for snapshots. */
struct Frame
{
    MethodId method = kNoMethod;
    uint32_t pc = 0;
    double cost_multiplier = 1.0;
    std::vector<Value> locals;
    std::vector<Value> stack;
};

/** Why run() returned. */
struct Suspend
{
    enum class Kind
    {
        Done,
        Quantum,
        ClassFault,
        ObjectFault,
        NativeFallback,
        MonitorAcquire,
        External,
        HeapFull,   //!< allocation failed; the driver must run a GC
        OffloadCall, //!< a call site redirected to FaaS (Semi-FaaS)
        MonitorRelease, //!< monitor of a shared object released
        VolatileSync,   //!< volatile access needs a JMM data sync
    };

    Kind kind = Kind::Done;
    Value result;                 //!< Done: the return value.
    KlassId klass = kNoKlass;     //!< ClassFault: the missing klass.
    Ref remote_ref = kNullRef;    //!< ObjectFault: the remote address.
    uint32_t native_id = 0;       //!< NativeFallback: which native.
    Ref monitor_obj = kNullRef;   //!< Monitor*/VolatileSync object.
    bool volatile_write = false;  //!< VolatileSync: release vs acquire.
    std::any external;            //!< External: driver-defined payload.
    MethodId offload_method = kNoMethod; //!< OffloadCall target.
    std::vector<Value> offload_args;     //!< OffloadCall arguments.
};

/** Counters a single interpreter accumulates (fallback analysis). */
struct InterpStats
{
    uint64_t instructions = 0;
    uint64_t calls = 0;
    uint64_t native_calls = 0;
    uint64_t monitor_enters = 0;
    uint64_t remote_hits = 0;   //!< remote refs resolved via the map
    uint64_t ic_hits = 0;       //!< CallVirt inline-cache hits
    uint64_t ic_misses = 0;     //!< CallVirt cache fills / refills
};

/** Executes one request at a time against a shared VmContext. */
class Interpreter
{
  public:
    explicit Interpreter(VmContext &ctx);

    /** Begin executing @p entry with the given arguments. */
    void start(MethodId entry, std::vector<Value> args);

    /** True while there are frames to run. */
    bool running() const { return !frames_.empty(); }

    /** Execute until the next suspension point. */
    Suspend run();

    /**
     * CPU nanoseconds accumulated since the last call; the caller
     * charges them to the simulated CPU. Resets the accumulator.
     */
    double consumeCost();

    /** Complete an External/OffloadCall suspension with its result. */
    void resumeExternal(Value result);

    /**
     * Monitor grant: the driver calls this once the SyncManager
     * granted the MonitorAcquire suspension; the retried
     * MonitorEnter then proceeds instead of re-suspending (the
     * one-shot flag is what makes acquisition atomic under
     * contention).
     */
    void grantMonitor(Ref obj) { granted_monitor_ = obj; }

    /** Release bookkeeping done: let the MonitorExit retry pass. */
    void grantRelease() { release_granted_ = true; }

    /** Volatile data sync done: let the access retry proceed. */
    void grantVolatile(Ref obj) { granted_volatile_ = obj; }

    /**
     * Never redirect calls to FaaS from this interpreter (used for
     * the server-local execution of a handler whose offload attempt
     * chose the local path, and for vanilla baselines).
     */
    void setSuppressOffload(bool on) { suppress_offload_ = on; }

    /** @name Failure recovery (paper Section 4.5) */
    /// @{
    /** Copy of the current frame stack. */
    std::vector<Frame> snapshotFrames() const { return frames_; }
    /** Replace the frame stack (re-execution from a sync point). */
    void restoreFrames(std::vector<Frame> frames);
    /// @}

    /** Iterate every root reference (GC). */
    void forEachRoot(const std::function<void(Value &)> &fn);

    /** @name Profiling support */
    /// @{
    /**
     * Automatic candidate profiling: when enabled and the context
     * has a Profiler, entering a candidate method starts recording
     * its dynamic extent (klasses used, statics touched, cost);
     * returning from it flushes a RootProfile sample. This is how
     * framework plumbing around an annotated handler stays out of
     * the handler's profile (Section 4.3).
     */
    void enableCandidateProfiling(bool on)
    {
        candidate_profiling_ = on;
    }

    /** Record klass-use and static-access sets during execution. */
    void enableRecording(bool on) { recording_ = on; }
    const std::set<KlassId> &recordedKlasses() const
    {
        return recorded_klasses_;
    }
    const std::set<std::pair<KlassId, uint32_t>> &
    recordedStatics() const
    {
        return recorded_statics_;
    }
    /** (receiver klass, field index) pairs actually read. */
    const std::set<std::pair<KlassId, uint32_t>> &
    recordedFieldReads() const
    {
        return recorded_field_reads_;
    }
    void clearRecording();
    /// @}

    /** @name Dynamic race oracle (race_check knob) */
    /// @{
    /**
     * Execution-context id in the context's RaceOracle. start()
     * registers one lazily; drivers that model fork edges (offload
     * dispatch, test schedulers) can install a pre-forked tid
     * instead before calling start().
     */
    void setRaceTid(int tid) { race_tid_ = tid; }
    int raceTid() const { return race_tid_; }
    /// @}

    const InterpStats &stats() const { return stats_; }
    std::size_t frameDepth() const { return frames_.size(); }

    VmContext &context() { return ctx_; }

  private:
    /** Outcome of a single instruction step. */
    enum class StepResult { Continue, Suspended, Finished };

    StepResult step(Suspend &out);

    Frame &top() { return frames_.back(); }

    /** Push/pop helpers operating on the top frame. */
    void push(Value v) { top().stack.push_back(v); }
    Value pop();
    Value &peek(std::size_t depth = 0);

    /**
     * Check a just-loaded value for the remote mark; rewrite it via
     * the remote map (resetting the bit at @p slot, exactly like the
     * paper) or produce an ObjectFault.
     *
     * @retval true when execution may continue.
     */
    bool checkLoadedValue(Value &slot, Suspend &out);

    /**
     * Resolve an object reference about to be dereferenced. Faults
     * on unmapped remote refs; rewrites mapped ones in place.
     */
    bool resolveRef(Value &v, Suspend &out);

    /**
     * Read barrier for a value just loaded from the heap or statics:
     * single branch on the fast (local) path, and on the slow path
     * resolves the remote ref via checkLoadedValue() and persists
     * the rewritten value through @p writeback (resetting the remote
     * bit at its home location, paper Section 4.1).
     *
     * @retval true when execution may continue.
     */
    template <typename Writeback>
    bool loadBarrier(Value &v, Suspend &out, Writeback &&writeback);

    /** Ensure a klass is loaded; otherwise fill @p out and fault. */
    bool requireKlass(KlassId id, Suspend &out);

    void charge(double ns);
    void enterMethod(MethodId id, std::vector<Value> args);
    bool invoke(MethodId id, Suspend &out);
    bool invokeNative(const Method &m, Suspend &out);

    VmContext &ctx_;
    std::vector<Frame> frames_;
    double pending_cost_ = 0.0;
    double quantum_acc_ = 0.0;
    double cost_total_ = 0.0;
    bool awaiting_external_ = false;
    bool suppress_offload_ = false;
    bool candidate_profiling_ = false;
    Ref granted_monitor_ = kNullRef;
    Ref granted_volatile_ = kNullRef;
    bool release_granted_ = false;
    bool candidate_active_ = false;
    MethodId candidate_root_ = kNoMethod;
    std::size_t candidate_depth_ = 0;
    double candidate_cost_start_ = 0.0;
    uint64_t candidate_syncs_start_ = 0;
    int race_tid_ = -1;
    bool recording_ = false;
    std::set<KlassId> recorded_klasses_;
    std::set<std::pair<KlassId, uint32_t>> recorded_statics_;
    std::set<std::pair<KlassId, uint32_t>> recorded_field_reads_;
    InterpStats stats_;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_INTERPRETER_H
