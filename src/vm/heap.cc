#include "vm/heap.h"

#include <algorithm>
#include <cstring>

#include "support/logging.h"
#include "support/strutil.h"

namespace beehive::vm {

namespace {

constexpr uint32_t
alignUp(uint32_t bytes)
{
    return (bytes + 7u) & ~7u;
}

} // namespace

Space::Space(uint8_t id, std::size_t capacity)
    : id_(id), mem_(capacity), top_(firstOffset())
{
    bh_assert(capacity > firstOffset(), "space too small");
}

uint64_t
Space::alloc(uint32_t bytes)
{
    bytes = alignUp(bytes);
    if (top_ + bytes > mem_.size())
        return 0;
    uint64_t offset = top_;
    top_ += bytes;
    return offset;
}

uint8_t *
Space::at(uint64_t offset)
{
    bh_assert(offset >= firstOffset() && offset < mem_.size(),
              "offset %llu out of space %u",
              static_cast<unsigned long long>(offset), id_);
    return mem_.data() + offset;
}

const uint8_t *
Space::at(uint64_t offset) const
{
    bh_assert(offset >= firstOffset() && offset < mem_.size(),
              "offset %llu out of space %u",
              static_cast<unsigned long long>(offset), id_);
    return mem_.data() + offset;
}

CardTable::CardTable(std::size_t space_capacity)
    : dirty_((space_capacity + kCardBytes - 1) / kCardBytes, false)
{
}

void
CardTable::mark(uint64_t offset)
{
    std::size_t card = offset / kCardBytes;
    bh_assert(card < dirty_.size(), "card out of range");
    dirty_[card] = true;
}

bool
CardTable::isDirty(std::size_t card) const
{
    bh_assert(card < dirty_.size(), "card out of range");
    return dirty_[card];
}

std::size_t
CardTable::dirtyCount() const
{
    return static_cast<std::size_t>(
        std::count(dirty_.begin(), dirty_.end(), true));
}

std::pair<uint64_t, uint64_t>
CardTable::cardRange(std::size_t card) const
{
    return {card * kCardBytes, (card + 1) * kCardBytes};
}

void
CardTable::clearAll()
{
    std::fill(dirty_.begin(), dirty_.end(), false);
}

Heap::Heap(const Program &program, std::size_t closure_capacity,
           std::size_t alloc_capacity)
    : program_(program),
      closure_(kClosureSpaceId, closure_capacity),
      alloc_a_(kAllocAId, alloc_capacity),
      alloc_b_(kAllocBId, alloc_capacity),
      cards_(closure_capacity)
{
}

Space &
Heap::space(uint8_t id)
{
    switch (id) {
      case kClosureSpaceId: return closure_;
      case kAllocAId: return alloc_a_;
      case kAllocBId: return alloc_b_;
    }
    panic("bad space id %u", id);
}

const Space &
Heap::space(uint8_t id) const
{
    return const_cast<Heap *>(this)->space(id);
}

void
Heap::flipAllocSpace()
{
    alloc_space_ = otherAllocSpaceId();
}

Ref
Heap::rawAlloc(uint8_t space_id, uint32_t total_bytes)
{
    uint64_t offset = space(space_id).alloc(total_bytes);
    if (offset == 0)
        return kNullRef;
    return makeRef(space_id, offset);
}

Ref
Heap::allocObject(uint8_t space_id, KlassId klass, ObjKind kind,
                  uint32_t count, uint32_t payload_bytes)
{
    uint32_t total =
        alignUp(static_cast<uint32_t>(sizeof(ObjHeader)) + payload_bytes);
    Ref ref = rawAlloc(space_id, total);
    if (ref == kNullRef)
        return kNullRef;
    auto *hdr = new (space(space_id).at(refOffset(ref))) ObjHeader();
    hdr->klass = klass;
    hdr->kind = kind;
    hdr->count = count;
    hdr->size = total;
    if (kind != ObjKind::Bytes) {
        Value *s = slots(ref);
        for (uint32_t i = 0; i < count; ++i)
            s[i] = Value::nil();
    }
    ++stats_.objects_allocated;
    stats_.bytes_allocated += total;
    stats_.peak_used = std::max(stats_.peak_used, usedBytes());
    return ref;
}

Ref
Heap::allocPlain(KlassId klass, bool in_closure)
{
    uint32_t nfields = program_.fieldCount(klass);
    return allocObject(in_closure ? kClosureSpaceId : alloc_space_,
                       klass, ObjKind::Plain, nfields,
                       nfields * sizeof(Value));
}

Ref
Heap::allocArray(KlassId klass, uint32_t len, bool in_closure)
{
    return allocObject(in_closure ? kClosureSpaceId : alloc_space_,
                       klass, ObjKind::Array, len, len * sizeof(Value));
}

Ref
Heap::allocBytes(KlassId klass, std::string_view data, bool in_closure)
{
    Ref ref = allocObject(in_closure ? kClosureSpaceId : alloc_space_,
                          klass, ObjKind::Bytes,
                          static_cast<uint32_t>(data.size()),
                          static_cast<uint32_t>(data.size()));
    if (ref == kNullRef)
        return kNullRef;
    std::memcpy(space(refSpace(ref)).at(refOffset(ref)) +
                    sizeof(ObjHeader),
                data.data(), data.size());
    return ref;
}

ObjHeader &
Heap::header(Ref r)
{
    bh_assert(r != kNullRef, "null deref");
    bh_assert(!isRemote(r), "header() on remote ref");
    return *reinterpret_cast<ObjHeader *>(
        space(refSpace(r)).at(refOffset(r)));
}

const ObjHeader &
Heap::header(Ref r) const
{
    return const_cast<Heap *>(this)->header(r);
}

Value *
Heap::slots(Ref r)
{
    return reinterpret_cast<Value *>(
        space(refSpace(r)).at(refOffset(r)) + sizeof(ObjHeader));
}

const Value *
Heap::slots(Ref r) const
{
    return const_cast<Heap *>(this)->slots(r);
}

Value
Heap::field(Ref obj, uint32_t idx) const
{
    const ObjHeader &hdr = header(obj);
    bh_assert(hdr.kind != ObjKind::Bytes, "field access on bytes");
    bh_assert(idx < hdr.count, "field index %u out of %u in %s", idx,
              hdr.count, program_.klass(hdr.klass).name.c_str());
    return slots(obj)[idx];
}

void
Heap::setFieldRaw(Ref obj, uint32_t idx, Value v)
{
    ObjHeader &hdr = header(obj);
    bh_assert(hdr.kind != ObjKind::Bytes, "field store on bytes");
    bh_assert(idx < hdr.count, "field index %u out of %u", idx,
              hdr.count);
    slots(obj)[idx] = v;
    // Card marking: a closure-space object now (possibly) references
    // an allocation-space object; the collector must treat this card
    // as a root region.
    if (refSpace(obj) == kClosureSpaceId && v.isRef() &&
        v.asRef() != kNullRef && !isRemote(v.asRef()) &&
        refSpace(v.asRef()) != kClosureSpaceId) {
        cards_.mark(refOffset(obj));
    }
}

void
Heap::setField(Ref obj, uint32_t idx, Value v)
{
    setFieldRaw(obj, idx, v);
    if (observer_)
        observer_(obj);
}

Ref
Heap::cloneObject(Ref src, uint8_t dst_space)
{
    return cloneFrom(*this, src, dst_space);
}

Ref
Heap::cloneFrom(const Heap &src_heap, Ref src, uint8_t dst_space)
{
    const ObjHeader &hdr = src_heap.header(src);
    Ref dst = rawAlloc(dst_space, hdr.size);
    if (dst == kNullRef)
        return kNullRef;
    std::memcpy(space(dst_space).at(refOffset(dst)),
                src_heap.space(refSpace(src)).at(refOffset(src)),
                hdr.size);
    header(dst).forward = kNullRef;
    ++stats_.objects_allocated;
    stats_.bytes_allocated += hdr.size;
    stats_.peak_used = std::max(stats_.peak_used, usedBytes());
    return dst;
}

std::string_view
Heap::bytes(Ref r) const
{
    const ObjHeader &hdr = header(r);
    bh_assert(hdr.kind == ObjKind::Bytes, "bytes() on non-bytes");
    return std::string_view(
        reinterpret_cast<const char *>(
            space(refSpace(r)).at(refOffset(r)) + sizeof(ObjHeader)),
        hdr.count);
}

uint32_t
Heap::count(Ref r) const
{
    return header(r).count;
}

bool
Heap::allocWouldFail(uint32_t slots_needed) const
{
    const Space &s = space(alloc_space_);
    std::size_t need = sizeof(ObjHeader) + slots_needed * sizeof(Value);
    return s.used() + need > s.capacity();
}

std::size_t
Heap::usedBytes() const
{
    return closure_.used() + space(alloc_space_).used();
}

void
Heap::forEachObject(uint8_t space_id,
                    const std::function<void(Ref)> &fn)
{
    Space &s = space(space_id);
    uint64_t offset = Space::firstOffset();
    while (offset < s.used()) {
        Ref ref = makeRef(space_id, offset);
        const ObjHeader &hdr = header(ref);
        bh_assert(hdr.size >= sizeof(ObjHeader), "corrupt heap walk");
        fn(ref);
        offset += hdr.size;
    }
}

std::string
Heap::describe(Ref r) const
{
    if (r == kNullRef)
        return "null";
    if (isRemote(r))
        return strprintf("remote(%llx)",
                         static_cast<unsigned long long>(stripRemote(r)));
    const ObjHeader &hdr = header(r);
    const char *kind = hdr.kind == ObjKind::Plain
                           ? "obj"
                           : hdr.kind == ObjKind::Array ? "arr" : "bytes";
    return strprintf("%s %s#%u@%llx", kind,
                     program_.klass(hdr.klass).name.c_str(), hdr.count,
                     static_cast<unsigned long long>(r));
}

} // namespace beehive::vm
