/**
 * @file
 * Candidate-method profiler (paper Section 4.3).
 *
 * BeeHive must choose *root methods* whose dynamic extent becomes
 * the initial closure. Web frameworks bury business logic under
 * dynamically generated interceptor stubs, so invocation counts
 * alone would select framework plumbing. The paper's insight is to
 * restrict candidates to methods the developer already annotated
 * (e.g. Spring's request mappings) and then profile only those.
 *
 * The profiler records, per candidate root: invocation count,
 * accumulated execution time, and the sets of klasses and static
 * fields its dynamic extent used. Root selection applies the
 * paper's two heuristics: large accumulated time, and average time
 * above a floor (to avoid offloading sub-millisecond methods).
 */

#ifndef BEEHIVE_VM_PROFILER_H
#define BEEHIVE_VM_PROFILER_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "vm/program.h"

namespace beehive::vm {

/** Accumulated profile of one candidate root method. */
struct RootProfile
{
    uint64_t invocations = 0;
    double total_cost_ns = 0.0;
    /** Monitor acquisitions observed in the dynamic extent. */
    uint64_t monitor_enters = 0;
    /** Klasses used in the dynamic extent (closure code set). */
    std::set<KlassId> klasses;
    /** Static fields accessed (closure data roots). */
    std::set<std::pair<KlassId, uint32_t>> statics;

    double
    avgCostNs() const
    {
        return invocations == 0 ? 0.0
                                : total_cost_ns /
                                      static_cast<double>(invocations);
    }

    /** Average synchronization operations per invocation. */
    double
    avgSyncs() const
    {
        return invocations == 0
                   ? 0.0
                   : static_cast<double>(monitor_enters) /
                         static_cast<double>(invocations);
    }
};

/** Records candidate-method behaviour on the server. */
class Profiler
{
  public:
    explicit Profiler(const Program &program) : program_(program) {}

    /**
     * Declare which annotation marks offloading candidates
     * (e.g. "RequestMapping"). May be called multiple times.
     */
    void addCandidateAnnotation(const std::string &name);

    bool isCandidate(MethodId id) const;
    std::vector<MethodId> candidates() const;

    /** Merge one observed execution of @p root into its profile. */
    void recordExecution(MethodId root, double cost_ns,
                         const std::set<KlassId> &klasses,
                         const std::set<std::pair<KlassId, uint32_t>>
                             &statics,
                         uint64_t monitor_enters = 0);

    /** Profile lookup (nullptr when never executed). */
    const RootProfile *profile(MethodId root) const;

    /**
     * Root selection heuristics (Section 4.3): candidates whose
     * accumulated time is large and whose average time is not short.
     *
     * @param min_total_ns Floor on accumulated execution time.
     * @param min_avg_ns Floor on average execution time (the paper
     *        suggests ~1 ms to avoid large relative overhead).
     * @return Selected roots, highest accumulated time first.
     */
    std::vector<MethodId> selectRoots(double min_total_ns,
                                      double min_avg_ns) const;

    /**
     * Synchronization-aware selection (the policy the paper leaves
     * as future work, Section 4.3): like selectRoots, but methods
     * whose dynamic extent averages more than @p max_avg_syncs
     * monitor operations per invocation are rejected -- every one
     * of those becomes a cross-endpoint fallback once offloaded
     * ("for applications inducing many fallbacks (e.g., frequent
     * synchronization on shared variables), the overhead of
     * BeeHive may still be considerable", Section 1).
     */
    std::vector<MethodId>
    selectRootsSyncAware(double min_total_ns, double min_avg_ns,
                         double max_avg_syncs) const;

  private:
    const Program &program_;
    std::set<MethodId> candidates_;
    std::map<MethodId, RootProfile> profiles_;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_PROFILER_H
