/**
 * @file
 * FastTrack-style dynamic race oracle.
 *
 * The runtime half of the race-detection pair (the static half is
 * vm/race_analysis.h): when the `race_check` knob is on, every
 * interpreter reports its monitor operations and heap accesses here
 * and the oracle maintains vector clocks -- one per execution
 * context (request thread or offloaded shadow thread), one per
 * monitor object, plus a shadow word per accessed location (object
 * field, static slot, or array object). A write that is not ordered
 * after every previous access to the same location by
 * happens-before, or a read not ordered after the previous write,
 * is a concrete race.
 *
 * Races are reported as static RaceScopes -- (kind, klass, slot) --
 * so tests can cross-check the lockset detector directly: every
 * scope in races() must satisfy RaceAnalysis::reportedAt() (static
 * soundness), and static findings absent from any dynamic run bound
 * the false-positive rate.
 *
 * Granularity matches the static side: array elements share one
 * shadow word per array object (index-insensitive), and volatile
 * accesses synchronize (write = release, read = acquire on a
 * per-location clock) instead of racing. Shadow words are keyed by
 * Ref, so a moving GC invalidates them; oracle runs use heaps large
 * enough not to collect (documented limitation, DESIGN.md §12).
 */

#ifndef BEEHIVE_VM_RACE_ORACLE_H
#define BEEHIVE_VM_RACE_ORACLE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "vm/race_analysis.h"
#include "vm/value.h"

namespace beehive::vm {

class RaceOracle
{
  public:
    explicit RaceOracle(const Program &program)
        : program_(program)
    {
    }

    /**
     * Register an execution context. @p parent = the forking
     * context's tid (its clock is inherited: fork edges order the
     * parent's setup before everything the child does), or -1 for
     * an initial context.
     */
    int newThread(int parent = -1);

    /** @name Synchronization events */
    /// @{
    void acquire(int tid, Ref monitor);
    void release(int tid, Ref monitor);
    /** A happens-before edge outside monitors (join, offload reply). */
    void ordered(int before_tid, int after_tid);
    /// @}

    /** @name Access events */
    /// @{
    void fieldAccess(int tid, Ref obj, KlassId klass, uint32_t slot,
                     bool is_write);
    void staticAccess(int tid, KlassId klass, uint32_t slot,
                      bool is_write);
    void elementAccess(int tid, Ref arr, KlassId klass,
                       bool is_write);
    void volatileAccess(int tid, Ref obj, KlassId klass,
                        uint32_t slot, bool is_write);
    /// @}

    /** Distinct scopes a concrete race was observed on. */
    const std::set<RaceScope> &races() const { return races_; }
    /** Human-readable description per detected race. */
    const std::vector<std::string> &reports() const
    {
        return reports_;
    }
    uint64_t checks() const { return checks_; }

  private:
    using Clock = std::vector<uint64_t>;

    struct Shadow
    {
        /** Last writer: (tid, clock); tid < 0 = no write yet. */
        int write_tid = -1;
        uint64_t write_clock = 0;
        /** Reads since the last write: tid -> clock. */
        std::map<int, uint64_t> reads;
    };

    /** Shadow-word key; statics use obj = kNullRef. */
    struct Loc
    {
        AccessRecord::Scope kind = AccessRecord::Scope::Field;
        Ref obj = kNullRef;
        KlassId klass = kNoKlass;
        uint32_t slot = 0;

        bool operator<(const Loc &o) const;
    };

    uint64_t clockOf(int tid, int observer_tid) const;
    void joinInto(Clock &dst, const Clock &src);
    void access(const Loc &loc, int tid, bool is_write);
    void raceAt(const Loc &loc, int tid, int other);

    const Program &program_;
    std::vector<Clock> threads_;
    std::map<Ref, Clock> monitors_;
    /** Per-location release clock for volatile acquire/release. */
    std::map<Loc, Clock> volatile_clocks_;
    std::map<Loc, Shadow> shadow_;
    std::set<RaceScope> races_;
    std::vector<std::string> reports_;
    uint64_t checks_ = 0;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_RACE_ORACLE_H
