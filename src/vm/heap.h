/**
 * @file
 * The HiveVM object heap.
 *
 * Each endpoint VM owns a Heap with three arena spaces mirroring the
 * paper's Section 4.4 layout:
 *
 *   - the *closure space* (id 0) holds the copied initial closure
 *     plus any objects later fetched from remote endpoints; it is
 *     never collected while the instance lives;
 *   - two *allocation semispaces* (ids 1 and 2) serve normal object
 *     allocation and are collected by a copying collector (src/gc).
 *
 * A 512-byte card table covers the closure space so the collector
 * only scans cards known to contain closure->allocation references.
 *
 * Objects are laid out in the arenas as a fixed header followed by
 * either tagged value slots (plain objects, arrays) or raw bytes
 * (strings/blobs). All addressing goes through Ref (see value.h).
 */

#ifndef BEEHIVE_VM_HEAP_H
#define BEEHIVE_VM_HEAP_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "vm/program.h"
#include "vm/value.h"

namespace beehive::vm {

/** Physical shape of a heap object. */
enum class ObjKind : uint8_t { Plain = 0, Array, Bytes };

/** Object flag bits. */
enum ObjFlags : uint8_t
{
    kFlagShared = 1 << 0,  //!< present in a server mapping table
    kFlagPacked = 1 << 1,  //!< native state marshalled (Packageable)
    kFlagDirtySync = 1 << 2, //!< on the endpoint's dirty-object list
};

/** Header preceding every heap object. */
struct ObjHeader
{
    uint32_t klass = 0;
    ObjKind kind = ObjKind::Plain;
    uint8_t flags = 0;
    /** Last monitor owner: endpoint id + 1; 0 = never locked. */
    uint16_t lock_owner = 0;
    /** Field count / array length / byte length. */
    uint32_t count = 0;
    /** Total object size in bytes including this header (8-aligned). */
    uint32_t size = 0;
    /** Forwarding address during GC; kNullRef when not forwarded. */
    Ref forward = kNullRef;
};

static_assert(sizeof(ObjHeader) == 24, "header layout drifted");

/** One contiguous arena. Offsets start at 8 so 0 stays null. */
class Space
{
  public:
    Space(uint8_t id, std::size_t capacity);

    /**
     * Bump-allocate @p bytes (8-aligned).
     * @return Arena offset, or 0 when the space is exhausted.
     */
    uint64_t alloc(uint32_t bytes);

    uint8_t *at(uint64_t offset);
    const uint8_t *at(uint64_t offset) const;

    uint8_t id() const { return id_; }
    std::size_t used() const { return top_; }
    std::size_t capacity() const { return mem_.size(); }

    /** Offset where iteration of allocated objects begins. */
    static constexpr uint64_t firstOffset() { return 8; }

    /** Reset the bump pointer (collection of a semispace). */
    void reset() { top_ = firstOffset(); }

  private:
    uint8_t id_;
    std::vector<uint8_t> mem_;
    std::size_t top_;
};

/** Dirty-card tracking over the closure space (512-byte cards). */
class CardTable
{
  public:
    static constexpr std::size_t kCardBytes = 512;

    explicit CardTable(std::size_t space_capacity);

    /** Mark the card covering byte @p offset dirty. */
    void mark(uint64_t offset);

    bool isDirty(std::size_t card) const;
    std::size_t cardCount() const { return dirty_.size(); }
    std::size_t dirtyCount() const;

    /** Byte range covered by card @p card. */
    std::pair<uint64_t, uint64_t> cardRange(std::size_t card) const;

    /** Clear all dirty marks (after a GC cycle scanned them). */
    void clearAll();

  private:
    std::vector<bool> dirty_;
};

/** Allocation/GC statistics for Section 5.6 reporting. */
struct HeapStats
{
    uint64_t objects_allocated = 0;
    uint64_t bytes_allocated = 0;
    std::size_t peak_used = 0;
};

/**
 * The per-endpoint object heap.
 *
 * The heap itself is policy-free: collection lives in src/gc, write
 * observation (dirty-object lists for sync, Section 4.2) is a hook
 * installed by the BeeHive runtime.
 */
class Heap
{
  public:
    static constexpr uint8_t kClosureSpaceId = 0;
    static constexpr uint8_t kAllocAId = 1;
    static constexpr uint8_t kAllocBId = 2;

    /** Observer invoked after every reference-field store. */
    using WriteObserver = std::function<void(Ref obj)>;

    /**
     * @param program Program supplying klass metadata.
     * @param closure_capacity Closure space size in bytes.
     * @param alloc_capacity Size of EACH allocation semispace.
     */
    Heap(const Program &program, std::size_t closure_capacity,
         std::size_t alloc_capacity);

    /** @name Allocation */
    /// @{
    /** Allocate a plain object of @p klass (fields nil-initialised). */
    Ref allocPlain(KlassId klass, bool in_closure = false);

    /** Allocate an array of @p len tagged slots. */
    Ref allocArray(KlassId klass, uint32_t len, bool in_closure = false);

    /** Allocate a byte object holding a copy of @p data. */
    Ref allocBytes(KlassId klass, std::string_view data,
                   bool in_closure = false);
    /// @}

    /** @name Object access */
    /// @{
    ObjHeader &header(Ref r);
    const ObjHeader &header(Ref r) const;

    Value field(Ref obj, uint32_t idx) const;
    /** Store a field; fires the write observer and card marking. */
    void setField(Ref obj, uint32_t idx, Value v);

    /** Array element accessors (same slot layout as fields). */
    Value elem(Ref arr, uint32_t idx) const { return field(arr, idx); }
    void setElem(Ref arr, uint32_t idx, Value v) { setField(arr, idx, v); }

    std::string_view bytes(Ref r) const;
    uint32_t count(Ref r) const;
    /// @}

    /** @name GC interface */
    /// @{
    Space &space(uint8_t id);
    const Space &space(uint8_t id) const;

    /** Id of the semispace currently serving allocations. */
    uint8_t allocSpaceId() const { return alloc_space_; }
    uint8_t otherAllocSpaceId() const
    {
        return alloc_space_ == kAllocAId ? kAllocBId : kAllocAId;
    }
    /** Swap from-/to-space after a copying collection. */
    void flipAllocSpace();

    CardTable &cards() { return cards_; }
    const CardTable &cards() const { return cards_; }

    /** True when an allocation of @p bytes would fail. */
    bool allocWouldFail(uint32_t slots) const;

    /** Raw allocation in a specific space (collector use). */
    Ref rawAlloc(uint8_t space_id, uint32_t total_bytes);

    /**
     * Shallow-copy a whole object (header + payload) into another
     * space. Field values are copied verbatim; the caller fixes
     * references. Used by the copying collector and by closure
     * construction.
     *
     * @return The clone's address, or kNullRef on exhaustion.
     */
    Ref cloneObject(Ref src, uint8_t dst_space);

    /**
     * Copy an object that lives in ANOTHER heap into one of this
     * heap's spaces (closure installation, sync promotion). Field
     * values are copied verbatim; the caller translates references.
     */
    Ref cloneFrom(const Heap &src_heap, Ref src, uint8_t dst_space);

    /**
     * Store a field without firing the write observer (collector
     * use); card marking still happens.
     */
    void setFieldRaw(Ref obj, uint32_t idx, Value v);
    /// @}

    void setWriteObserver(WriteObserver obs) { observer_ = std::move(obs); }

    const Program &program() const { return program_; }
    const HeapStats &stats() const { return stats_; }

    /** Bytes currently in use across closure + active semispace. */
    std::size_t usedBytes() const;

    /** Walk all objects in a space. */
    void forEachObject(uint8_t space_id,
                       const std::function<void(Ref)> &fn);

    /** Deep human-readable dump of one object (debugging). */
    std::string describe(Ref r) const;

  private:
    Ref allocObject(uint8_t space_id, KlassId klass, ObjKind kind,
                    uint32_t count, uint32_t payload_bytes);

    Value *slots(Ref r);
    const Value *slots(Ref r) const;

    const Program &program_;
    Space closure_;
    Space alloc_a_;
    Space alloc_b_;
    uint8_t alloc_space_ = kAllocAId;
    CardTable cards_;
    WriteObserver observer_;
    HeapStats stats_;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_HEAP_H
