/**
 * @file
 * Fluent bytecode assembler.
 *
 * CodeBuilder is how the mini web framework and the applications
 * author HiveVM methods. It supports forward-referencing labels and
 * resolves them at build() time.
 *
 * Example:
 * @code
 *   CodeBuilder b(program, klass, "sum", 1);
 *   auto loop = b.newLabel(), done = b.newLabel();
 *   b.pushI(0).store(1)           // acc = 0
 *    .bind(loop)
 *    .load(0).pushI(0).cmpLe().jnz(done)
 *    .load(1).load(0).add().store(1)
 *    .load(0).pushI(1).sub().store(0)
 *    .jmp(loop)
 *    .bind(done)
 *    .load(1).ret();
 *   MethodId m = b.build();
 * @endcode
 */

#ifndef BEEHIVE_VM_CODE_BUILDER_H
#define BEEHIVE_VM_CODE_BUILDER_H

#include <cstring>
#include <string>
#include <vector>

#include "vm/program.h"

namespace beehive::vm {

/** Assembles one method's bytecode. */
class CodeBuilder
{
  public:
    /** Forward-referencable jump target. */
    using Label = std::size_t;

    /**
     * @param program Target program.
     * @param owner Owning klass.
     * @param name Method name (unqualified).
     * @param num_args Argument count (locals [0, num_args)).
     */
    CodeBuilder(Program &program, KlassId owner, std::string name,
                uint16_t num_args);

    /** @name Labels */
    /// @{
    Label newLabel();
    CodeBuilder &bind(Label l);
    /// @}

    /** @name Stack/locals */
    /// @{
    CodeBuilder &pushI(int64_t v) { return emit(Op::PushI, v); }
    CodeBuilder &pushF(double v);
    CodeBuilder &pushNil() { return emit(Op::PushNil); }
    CodeBuilder &load(int64_t slot) { return emit(Op::Load, slot); }
    CodeBuilder &store(int64_t slot) { return emit(Op::Store, slot); }
    CodeBuilder &dup() { return emit(Op::Dup); }
    CodeBuilder &popv() { return emit(Op::Pop); }
    CodeBuilder &swap() { return emit(Op::Swap); }
    /// @}

    /** @name Arithmetic and logic */
    /// @{
    CodeBuilder &add() { return emit(Op::Add); }
    CodeBuilder &sub() { return emit(Op::Sub); }
    CodeBuilder &mul() { return emit(Op::Mul); }
    CodeBuilder &div() { return emit(Op::Div); }
    CodeBuilder &mod() { return emit(Op::Mod); }
    CodeBuilder &neg() { return emit(Op::Neg); }
    CodeBuilder &cmpEq() { return emit(Op::CmpEq); }
    CodeBuilder &cmpNe() { return emit(Op::CmpNe); }
    CodeBuilder &cmpLt() { return emit(Op::CmpLt); }
    CodeBuilder &cmpLe() { return emit(Op::CmpLe); }
    CodeBuilder &cmpGt() { return emit(Op::CmpGt); }
    CodeBuilder &cmpGe() { return emit(Op::CmpGe); }
    CodeBuilder &logAnd() { return emit(Op::And); }
    CodeBuilder &logOr() { return emit(Op::Or); }
    CodeBuilder &logNot() { return emit(Op::Not); }
    /// @}

    /** @name Control flow */
    /// @{
    CodeBuilder &jmp(Label l) { return emitJump(Op::Jmp, l); }
    CodeBuilder &jz(Label l) { return emitJump(Op::Jz, l); }
    CodeBuilder &jnz(Label l) { return emitJump(Op::Jnz, l); }
    /// @}

    /** @name Objects */
    /// @{
    CodeBuilder &newObj(KlassId k) { return emit(Op::New, k); }
    CodeBuilder &getField(int64_t idx) { return emit(Op::GetField, idx); }
    CodeBuilder &putField(int64_t idx) { return emit(Op::PutField, idx); }
    /** Volatile accessors: JMM acquire/release data sync. */
    CodeBuilder &getVolatile(int64_t idx)
    {
        return emit(Op::GetVolatile, idx);
    }
    CodeBuilder &putVolatile(int64_t idx)
    {
        return emit(Op::PutVolatile, idx);
    }
    CodeBuilder &newArr(KlassId k) { return emit(Op::NewArr, k); }
    CodeBuilder &aload() { return emit(Op::ALoad); }
    CodeBuilder &astore() { return emit(Op::AStore); }
    CodeBuilder &arrLen() { return emit(Op::ArrLen); }
    /** Push a byte object holding the given literal. */
    CodeBuilder &pushStr(const std::string &s);
    CodeBuilder &bytesLen() { return emit(Op::BytesLen); }
    CodeBuilder &getStatic(KlassId k, int64_t slot)
    {
        return emit(Op::GetStatic, k, slot);
    }
    CodeBuilder &putStatic(KlassId k, int64_t slot)
    {
        return emit(Op::PutStatic, k, slot);
    }
    /// @}

    /** @name Calls */
    /// @{
    CodeBuilder &call(MethodId m) { return emit(Op::Call, m); }
    /** Call "Klass.method" by qualified name (must already exist). */
    CodeBuilder &call(const std::string &qualified);
    /** Recursive call to the method being built (id patched at build). */
    CodeBuilder &callSelf();
    /** Virtual dispatch on the receiver under @p nargs - 1 args. */
    CodeBuilder &callVirt(const std::string &name, uint16_t nargs);
    CodeBuilder &ret() { return emit(Op::Ret); }
    /// @}

    /** @name Synchronization and compute */
    /// @{
    CodeBuilder &monitorEnter() { return emit(Op::MonitorEnter); }
    CodeBuilder &monitorExit() { return emit(Op::MonitorExit); }
    /** Model @p ns nanoseconds of application computation. */
    CodeBuilder &compute(int64_t ns) { return emit(Op::Compute, ns); }
    /// @}

    /** Attach an annotation to the method being built. */
    CodeBuilder &annotate(const std::string &name);

    /** Reserve extra local slots beyond the arguments. */
    CodeBuilder &locals(uint16_t extra);

    /** Finish: resolve labels, register the method, return its id. */
    MethodId build();

    /** Current instruction count (testing). */
    std::size_t size() const { return code_.size(); }

  private:
    CodeBuilder &emit(Op op, int64_t a = 0, int64_t b = 0);
    CodeBuilder &emitJump(Op op, Label l);

    Program &program_;
    KlassId owner_;
    std::string name_;
    uint16_t num_args_;
    uint16_t num_locals_;
    std::vector<Instr> code_;
    std::vector<int64_t> label_pos_;        //!< -1 = unbound
    std::vector<std::pair<std::size_t, Label>> patches_;
    std::vector<std::size_t> self_patches_;
    std::vector<Annotation> annotations_;
    bool built_ = false;
};

} // namespace beehive::vm

#endif // BEEHIVE_VM_CODE_BUILDER_H
