#include "vm/interpreter.h"

#include <cmath>
#include <cstring>

#include "support/logging.h"
#include "vm/profiler.h"
#include "vm/race_oracle.h"

namespace beehive::vm {

Interpreter::Interpreter(VmContext &ctx) : ctx_(ctx)
{
}

void
Interpreter::start(MethodId entry, std::vector<Value> args)
{
    bh_assert(frames_.empty(), "start() while running");
    awaiting_external_ = false;
    if (ctx_.raceOracle() && race_tid_ < 0)
        race_tid_ = ctx_.raceOracle()->newThread();
    enterMethod(entry, std::move(args));
}

Value
Interpreter::pop()
{
    Frame &f = top();
    bh_assert(!f.stack.empty(), "stack underflow in %s",
              ctx_.program().method(f.method).name.c_str());
    Value v = f.stack.back();
    f.stack.pop_back();
    return v;
}

Value &
Interpreter::peek(std::size_t depth)
{
    Frame &f = top();
    bh_assert(f.stack.size() > depth, "stack underflow on peek");
    return f.stack[f.stack.size() - 1 - depth];
}

void
Interpreter::charge(double ns)
{
    pending_cost_ += ns;
    quantum_acc_ += ns;
    cost_total_ += ns;
}

double
Interpreter::consumeCost()
{
    double v = pending_cost_;
    pending_cost_ = 0.0;
    return v;
}

void
Interpreter::clearRecording()
{
    recorded_klasses_.clear();
    recorded_statics_.clear();
    recorded_field_reads_.clear();
}

void
Interpreter::enterMethod(MethodId id, std::vector<Value> args)
{
    const Method &m = ctx_.program().method(id);
    bh_assert(!m.is_native, "enterMethod on native");
    bh_assert(args.size() == m.num_args, "%s expects %u args, got %zu",
              m.name.c_str(), m.num_args, args.size());
    Frame frame;
    frame.method = id;
    frame.cost_multiplier = ctx_.methodEntered(id);
    frame.locals = std::move(args);
    frame.locals.resize(m.num_locals, Value::nil());
    frames_.push_back(std::move(frame));
    ++stats_.calls;
}

bool
Interpreter::requireKlass(KlassId id, Suspend &out)
{
    if (recording_)
        recorded_klasses_.insert(id);
    if (ctx_.isLoaded(id))
        return true;
    out.kind = Suspend::Kind::ClassFault;
    out.klass = id;
    return false;
}

bool
Interpreter::checkLoadedValue(Value &slot, Suspend &out)
{
    if (!ctx_.config().check_remote_refs)
        return true;
    if (!slot.isRef())
        return true;
    Ref r = slot.asRef();
    if (r == kNullRef || !isRemote(r))
        return true;
    Ref local = ctx_.lookupRemote(r);
    if (local != kNullRef) {
        // Reset the remote bit in place so later loads are local
        // (paper Section 4.1).
        slot = Value::ofRef(local);
        ++stats_.remote_hits;
        return true;
    }
    out.kind = Suspend::Kind::ObjectFault;
    out.remote_ref = r;
    return false;
}

template <typename Writeback>
bool
Interpreter::loadBarrier(Value &v, Suspend &out, Writeback &&writeback)
{
    if (!ctx_.config().check_remote_refs || !v.isRef() ||
        !isRemote(v.asRef()))
        return true;
    if (!checkLoadedValue(v, out))
        return false;
    writeback(v);
    return true;
}

bool
Interpreter::resolveRef(Value &v, Suspend &out)
{
    bh_assert(v.isRef(), "expected a reference, got kind %d",
              static_cast<int>(v.kind));
    bh_assert(v.asRef() != kNullRef, "null dereference in %s",
              ctx_.program().method(top().method).name.c_str());
    // The stack slot is the value's home, so the rewrite done by
    // checkLoadedValue() is already the writeback.
    return loadBarrier(v, out, [](Value &) {});
}

bool
Interpreter::invokeNative(const Method &m, Suspend &out)
{
    const NativeMethod &native = ctx_.natives().get(m.native_id);
    Frame &f = top();
    bh_assert(f.stack.size() >= m.num_args,
              "not enough args for native %s", native.name.c_str());

    // Peek the arguments without popping so a fallback suspension
    // leaves the instruction retriable.
    std::vector<Value> args(f.stack.end() - m.num_args, f.stack.end());

    if (!ctx_.consumeForceLocalNative() &&
        ctx_.nativeDisposition(native, args) ==
            NativeDisposition::Fallback) {
        out.kind = Suspend::Kind::NativeFallback;
        out.native_id = m.native_id;
        return false;
    }

    f.stack.resize(f.stack.size() - m.num_args);
    ++f.pc;
    ++stats_.native_calls;
    ctx_.countNative(native.category);

    NativeResult result = native.fn(ctx_, args);
    charge(result.cost_ns);
    if (result.external) {
        awaiting_external_ = true;
        out.kind = Suspend::Kind::External;
        out.external = std::move(*result.external);
        return false;
    }
    push(result.ret);
    return true;
}

bool
Interpreter::invoke(MethodId id, Suspend &out)
{
    const Method &m = ctx_.program().method(id);
    if (!requireKlass(m.owner, out))
        return false;
    if (m.is_native)
        return invokeNative(m, out);

    Frame &f = top();
    bh_assert(f.stack.size() >= m.num_args, "not enough args for %s",
              m.name.c_str());

    if (!suppress_offload_ && ctx_.shouldOffload(id)) {
        // Semi-FaaS split: redirect this call to a FaaS function.
        // The driver completes it via resumeExternal().
        std::vector<Value> args(f.stack.end() - m.num_args,
                                f.stack.end());
        f.stack.resize(f.stack.size() - m.num_args);
        ++f.pc;
        awaiting_external_ = true;
        out.kind = Suspend::Kind::OffloadCall;
        out.offload_method = id;
        out.offload_args = std::move(args);
        return false;
    }

    std::vector<Value> args(f.stack.end() - m.num_args, f.stack.end());
    f.stack.resize(f.stack.size() - m.num_args);
    ++f.pc;
    charge(20.0 * f.cost_multiplier); // call overhead
    enterMethod(id, std::move(args));

    // Candidate profiling: entering an annotated handler starts
    // recording its dynamic extent.
    if (candidate_profiling_ && !candidate_active_ &&
        ctx_.profiler() && ctx_.profiler()->isCandidate(id)) {
        candidate_active_ = true;
        candidate_root_ = id;
        candidate_depth_ = frames_.size();
        candidate_cost_start_ = cost_total_;
        candidate_syncs_start_ = stats_.monitor_enters;
        recording_ = true;
        clearRecording();
    }
    return true;
}

void
Interpreter::resumeExternal(Value result)
{
    bh_assert(awaiting_external_, "resumeExternal without suspension");
    awaiting_external_ = false;
    push(result);
}

Interpreter::StepResult
Interpreter::step(Suspend &out)
{
    Frame &f = top();
    const Method &m = ctx_.program().method(f.method);
    bh_assert(f.pc < m.code.size(), "pc ran off method %s",
              m.name.c_str());
    const Instr &in = m.code[f.pc];
    const double mult = f.cost_multiplier;

    ++stats_.instructions;
    charge(ctx_.config().instr_cost_ns * mult);

    switch (in.op) {
      case Op::Nop:
        break;

      case Op::PushI:
        push(Value::ofInt(in.a));
        break;

      case Op::PushF: {
        double d;
        int64_t bits = in.a;
        std::memcpy(&d, &bits, sizeof d);
        push(Value::ofFloat(d));
        break;
      }

      case Op::PushNil:
        push(Value::nil());
        break;

      case Op::Load: {
        bh_assert(static_cast<std::size_t>(in.a) < f.locals.size(),
                  "bad local slot");
        if (!checkLoadedValue(f.locals[in.a], out))
            return StepResult::Suspended;
        push(f.locals[in.a]);
        break;
      }

      case Op::Store: {
        bh_assert(static_cast<std::size_t>(in.a) < f.locals.size(),
                  "bad local slot");
        f.locals[in.a] = pop();
        break;
      }

      case Op::Dup:
        push(peek());
        break;

      case Op::Pop:
        pop();
        break;

      case Op::Swap: {
        Value a = pop();
        Value b = pop();
        push(a);
        push(b);
        break;
      }

      case Op::Add: case Op::Sub: case Op::Mul:
      case Op::Div: case Op::Mod: {
        Value b = pop();
        Value a = pop();
        if (a.isInt() && b.isInt()) {
            int64_t x = a.asInt(), y = b.asInt(), r = 0;
            switch (in.op) {
              case Op::Add: r = x + y; break;
              case Op::Sub: r = x - y; break;
              case Op::Mul: r = x * y; break;
              // Division by zero yields 0 by definition in HiveVM;
              // the apps never rely on trapping.
              case Op::Div: r = y == 0 ? 0 : x / y; break;
              case Op::Mod: r = y == 0 ? 0 : x % y; break;
              default: break;
            }
            push(Value::ofInt(r));
        } else {
            double x = a.asNumber(), y = b.asNumber(), r = 0.0;
            switch (in.op) {
              case Op::Add: r = x + y; break;
              case Op::Sub: r = x - y; break;
              case Op::Mul: r = x * y; break;
              case Op::Div: r = y == 0.0 ? 0.0 : x / y; break;
              case Op::Mod: r = y == 0.0 ? 0.0 : std::fmod(x, y); break;
              default: break;
            }
            push(Value::ofFloat(r));
        }
        break;
      }

      case Op::Neg: {
        Value a = pop();
        if (a.isInt())
            push(Value::ofInt(-a.asInt()));
        else
            push(Value::ofFloat(-a.asNumber()));
        break;
      }

      case Op::CmpEq: case Op::CmpNe: {
        Value b = pop();
        Value a = pop();
        bool eq;
        if (a.isRef() || b.isRef())
            eq = a == b;
        else
            eq = a.asNumber() == b.asNumber();
        push(Value::ofInt((in.op == Op::CmpEq) == eq ? 1 : 0));
        break;
      }

      case Op::CmpLt: case Op::CmpLe: case Op::CmpGt: case Op::CmpGe: {
        Value b = pop();
        Value a = pop();
        double x = a.asNumber(), y = b.asNumber();
        bool r = false;
        switch (in.op) {
          case Op::CmpLt: r = x < y; break;
          case Op::CmpLe: r = x <= y; break;
          case Op::CmpGt: r = x > y; break;
          case Op::CmpGe: r = x >= y; break;
          default: break;
        }
        push(Value::ofInt(r ? 1 : 0));
        break;
      }

      case Op::And: {
        Value b = pop();
        Value a = pop();
        push(Value::ofInt(a.truthy() && b.truthy() ? 1 : 0));
        break;
      }

      case Op::Or: {
        Value b = pop();
        Value a = pop();
        push(Value::ofInt(a.truthy() || b.truthy() ? 1 : 0));
        break;
      }

      case Op::Not:
        push(Value::ofInt(pop().truthy() ? 0 : 1));
        break;

      case Op::Jmp:
        f.pc = static_cast<uint32_t>(in.a);
        return StepResult::Continue;

      case Op::Jz:
        if (!pop().truthy()) {
            f.pc = static_cast<uint32_t>(in.a);
            return StepResult::Continue;
        }
        break;

      case Op::Jnz:
        if (pop().truthy()) {
            f.pc = static_cast<uint32_t>(in.a);
            return StepResult::Continue;
        }
        break;

      case Op::New: {
        KlassId k = static_cast<KlassId>(in.a);
        if (!requireKlass(k, out))
            return StepResult::Suspended;
        Ref r = ctx_.heap().allocPlain(k);
        if (r == kNullRef) {
            out.kind = Suspend::Kind::HeapFull;
            return StepResult::Suspended;
        }
        push(Value::ofRef(r));
        charge(10.0 * mult);
        break;
      }

      case Op::NewArr: {
        KlassId k = static_cast<KlassId>(in.a);
        if (!requireKlass(k, out))
            return StepResult::Suspended;
        Value len = peek();
        bh_assert(len.isInt() && len.asInt() >= 0, "bad array length");
        Ref r = ctx_.heap().allocArray(
            k, static_cast<uint32_t>(len.asInt()));
        if (r == kNullRef) {
            out.kind = Suspend::Kind::HeapFull;
            return StepResult::Suspended;
        }
        pop();
        push(Value::ofRef(r));
        charge(10.0 * mult + 0.1 * static_cast<double>(len.asInt()));
        break;
      }

      case Op::NewBytes: {
        KlassId k = ctx_.config().bytes_klass;
        bh_assert(k != kNoKlass, "bytes_klass not configured");
        if (!requireKlass(k, out))
            return StepResult::Suspended;
        const std::string &s =
            ctx_.program().stringAt(static_cast<uint32_t>(in.a));
        Ref r = ctx_.heap().allocBytes(k, s);
        if (r == kNullRef) {
            out.kind = Suspend::Kind::HeapFull;
            return StepResult::Suspended;
        }
        push(Value::ofRef(r));
        charge(5.0 * mult + 0.05 * static_cast<double>(s.size()));
        break;
      }

      case Op::BytesLen: {
        if (!resolveRef(peek(), out))
            return StepResult::Suspended;
        Ref r = pop().asRef();
        push(Value::ofInt(ctx_.heap().count(r)));
        break;
      }

      case Op::GetField: {
        if (!resolveRef(peek(), out))
            return StepResult::Suspended;
        Ref obj = peek().asRef();
        if (recording_)
            recorded_field_reads_.insert(
                {ctx_.heap().header(obj).klass,
                 static_cast<uint32_t>(in.a)});
        Value v = ctx_.heap().field(obj,
                                    static_cast<uint32_t>(in.a));
        if (!loadBarrier(v, out, [&](Value &nv) {
                // Reset the bit in the field itself.
                ctx_.heap().setField(obj, static_cast<uint32_t>(in.a),
                                     nv);
            }))
            return StepResult::Suspended;
        if (RaceOracle *ro = ctx_.raceOracle())
            ro->fieldAccess(race_tid_, obj,
                            ctx_.heap().header(obj).klass,
                            static_cast<uint32_t>(in.a), false);
        pop();
        push(v);
        break;
      }

      case Op::PutField: {
        if (!resolveRef(peek(1), out))
            return StepResult::Suspended;
        Value v = pop();
        Ref obj = pop().asRef();
        ctx_.heap().setField(obj, static_cast<uint32_t>(in.a), v);
        if (RaceOracle *ro = ctx_.raceOracle())
            ro->fieldAccess(race_tid_, obj,
                            ctx_.heap().header(obj).klass,
                            static_cast<uint32_t>(in.a), true);
        break;
      }

      case Op::ALoad: {
        if (!resolveRef(peek(1), out))
            return StepResult::Suspended;
        Value idx_v = peek(0);
        bh_assert(idx_v.isInt(), "array index must be int");
        Ref arr = peek(1).asRef();
        uint32_t idx = static_cast<uint32_t>(idx_v.asInt());
        Value v = ctx_.heap().elem(arr, idx);
        if (!loadBarrier(v, out, [&](Value &nv) {
                ctx_.heap().setElem(arr, idx, nv);
            }))
            return StepResult::Suspended;
        if (RaceOracle *ro = ctx_.raceOracle())
            ro->elementAccess(race_tid_, arr,
                              ctx_.heap().header(arr).klass, false);
        pop();
        pop();
        push(v);
        break;
      }

      case Op::AStore: {
        if (!resolveRef(peek(2), out))
            return StepResult::Suspended;
        Value v = pop();
        Value idx = pop();
        Ref arr = pop().asRef();
        bh_assert(idx.isInt(), "array index must be int");
        ctx_.heap().setElem(arr, static_cast<uint32_t>(idx.asInt()), v);
        if (RaceOracle *ro = ctx_.raceOracle())
            ro->elementAccess(race_tid_, arr,
                              ctx_.heap().header(arr).klass, true);
        break;
      }

      case Op::ArrLen: {
        if (!resolveRef(peek(), out))
            return StepResult::Suspended;
        Ref arr = pop().asRef();
        push(Value::ofInt(ctx_.heap().count(arr)));
        break;
      }

      case Op::GetStatic: {
        KlassId k = static_cast<KlassId>(in.a);
        if (!requireKlass(k, out))
            return StepResult::Suspended;
        if (recording_)
            recorded_statics_.insert(
                {k, static_cast<uint32_t>(in.b)});
        Value v = ctx_.getStatic(k, static_cast<uint32_t>(in.b));
        if (!loadBarrier(v, out, [&](Value &nv) {
                ctx_.setStatic(k, static_cast<uint32_t>(in.b), nv);
            }))
            return StepResult::Suspended;
        if (RaceOracle *ro = ctx_.raceOracle())
            ro->staticAccess(race_tid_, k,
                             static_cast<uint32_t>(in.b), false);
        push(v);
        break;
      }

      case Op::PutStatic: {
        KlassId k = static_cast<KlassId>(in.a);
        if (!requireKlass(k, out))
            return StepResult::Suspended;
        if (recording_)
            recorded_statics_.insert(
                {k, static_cast<uint32_t>(in.b)});
        ctx_.setStatic(k, static_cast<uint32_t>(in.b), pop());
        if (RaceOracle *ro = ctx_.raceOracle())
            ro->staticAccess(race_tid_, k,
                             static_cast<uint32_t>(in.b), true);
        break;
      }

      case Op::Call:
      case Op::CallNative: {
        MethodId id = static_cast<MethodId>(in.a);
        bh_assert(in.op != Op::CallNative ||
                      ctx_.program().method(id).is_native,
                  "CallNative on bytecode method");
        if (!invoke(id, out))
            return StepResult::Suspended;
        return StepResult::Continue; // pc handled by invoke
      }

      case Op::CallVirt: {
        NameId name = static_cast<NameId>(in.a);
        uint16_t nargs = static_cast<uint16_t>(in.b);
        bh_assert(nargs >= 1, "CallVirt needs a receiver");
        if (!resolveRef(peek(nargs - 1), out))
            return StepResult::Suspended;
        Ref recv = peek(nargs - 1).asRef();
        KlassId k = ctx_.heap().header(recv).klass;
        // Per-site monomorphic inline cache: the common case (same
        // receiver klass as last time at this pc) skips even the
        // frozen-vtable load. The charge below models the original
        // vtable walk, so the accounting is unchanged either way.
        VmContext::InlineCache &ic = ctx_.inlineCache(f.method, f.pc);
        MethodId id;
        if (ic.klass == k) {
            id = ic.method;
            ++stats_.ic_hits;
            ctx_.countDispatch(true);
        } else {
            id = ctx_.program().resolveVirtual(k, name);
            ic.klass = k;
            ic.method = id;
            ++ic.fills;
            ++stats_.ic_misses;
            ctx_.countDispatch(false);
        }
        bh_assert(id != kNoMethod, "no virtual %s on %s",
                  ctx_.program().nameAt(name).c_str(),
                  ctx_.program().klass(k).name.c_str());
        bh_assert(ctx_.program().method(id).num_args == nargs,
                  "virtual arg count mismatch on %s",
                  ctx_.program().nameAt(name).c_str());
        charge(5.0 * mult); // vtable walk
        if (!invoke(id, out))
            return StepResult::Suspended;
        return StepResult::Continue;
      }

      case Op::MonitorEnter: {
        if (!resolveRef(peek(), out))
            return StepResult::Suspended;
        Ref obj = peek().asRef();
        if (granted_monitor_ == obj) {
            granted_monitor_ = kNullRef; // one-shot grant consumed
        } else if (ctx_.needsRemoteAcquire(obj)) {
            // Shared-object monitor: the driver must win it from
            // the SyncManager's monitor table before we proceed.
            out.kind = Suspend::Kind::MonitorAcquire;
            out.monitor_obj = obj;
            return StepResult::Suspended;
        }
        pop();
        ctx_.heap().header(obj).lock_owner =
            static_cast<uint16_t>(ctx_.config().endpoint + 1);
        if (RaceOracle *ro = ctx_.raceOracle())
            ro->acquire(race_tid_, obj);
        ++stats_.monitor_enters;
        charge(15.0 * mult);
        break;
      }

      case Op::MonitorExit: {
        if (!resolveRef(peek(), out))
            return StepResult::Suspended;
        Ref obj = peek().asRef();
        if (release_granted_) {
            release_granted_ = false;
        } else if (ctx_.needsRemoteAcquire(obj)) {
            out.kind = Suspend::Kind::MonitorRelease;
            out.monitor_obj = obj;
            return StepResult::Suspended;
        }
        pop();
        if (RaceOracle *ro = ctx_.raceOracle())
            ro->release(race_tid_, obj);
        ctx_.monitorReleased(obj);
        charge(10.0 * mult);
        break;
      }

      case Op::GetVolatile:
      case Op::PutVolatile: {
        // Volatile accesses carry JMM acquire/release semantics:
        // on a shared object they synchronize state with the last
        // releasing endpoint before proceeding (Section 4.2:
        // "other synchronization operations, like volatile memory
        // accesses, are also supported").
        std::size_t obj_depth = in.op == Op::PutVolatile ? 1 : 0;
        if (!resolveRef(peek(obj_depth), out))
            return StepResult::Suspended;
        Ref obj = peek(obj_depth).asRef();
        if (granted_volatile_ == obj) {
            granted_volatile_ = kNullRef;
        } else if (ctx_.needsRemoteAcquire(obj)) {
            out.kind = Suspend::Kind::VolatileSync;
            out.monitor_obj = obj;
            out.volatile_write = in.op == Op::PutVolatile;
            return StepResult::Suspended;
        }
        if (in.op == Op::PutVolatile) {
            Value v = pop();
            Ref target = pop().asRef();
            ctx_.heap().setField(target,
                                 static_cast<uint32_t>(in.a), v);
            if (RaceOracle *ro = ctx_.raceOracle())
                ro->volatileAccess(race_tid_, target,
                                   ctx_.heap().header(target).klass,
                                   static_cast<uint32_t>(in.a),
                                   true);
            ctx_.monitorReleased(target); // release edge
        } else {
            Ref target = pop().asRef();
            if (recording_)
                recorded_field_reads_.insert(
                    {ctx_.heap().header(target).klass,
                     static_cast<uint32_t>(in.a)});
            if (RaceOracle *ro = ctx_.raceOracle())
                ro->volatileAccess(race_tid_, target,
                                   ctx_.heap().header(target).klass,
                                   static_cast<uint32_t>(in.a),
                                   false);
            push(ctx_.heap().field(target,
                                   static_cast<uint32_t>(in.a)));
        }
        charge(8.0 * mult);
        break;
      }

      case Op::Compute:
        charge(static_cast<double>(in.a) * mult);
        break;

      case Op::Ret: {
        Value result =
            f.stack.empty() ? Value::nil() : f.stack.back();
        if (candidate_active_ && frames_.size() == candidate_depth_) {
            // The candidate handler is returning: flush its profile.
            if (ctx_.profiler()) {
                ctx_.profiler()->recordExecution(
                    candidate_root_,
                    cost_total_ - candidate_cost_start_,
                    recorded_klasses_, recorded_statics_,
                    stats_.monitor_enters - candidate_syncs_start_);
            }
            candidate_active_ = false;
            recording_ = false;
        }
        frames_.pop_back();
        if (frames_.empty()) {
            out.kind = Suspend::Kind::Done;
            out.result = result;
            return StepResult::Finished;
        }
        push(result);
        return StepResult::Continue;
      }
    }

    ++f.pc;
    return StepResult::Continue;
}

Suspend
Interpreter::run()
{
    bh_assert(!frames_.empty(), "run() with no frames");
    bh_assert(!awaiting_external_,
              "run() while awaiting external completion");
    Suspend out;
    while (true) {
        StepResult r = step(out);
        if (r != StepResult::Continue)
            return out;
        if (quantum_acc_ >= ctx_.config().quantum_ns) {
            quantum_acc_ = 0.0;
            out.kind = Suspend::Kind::Quantum;
            return out;
        }
    }
}

void
Interpreter::restoreFrames(std::vector<Frame> frames)
{
    frames_ = std::move(frames);
    awaiting_external_ = false;
}

void
Interpreter::forEachRoot(const std::function<void(Value &)> &fn)
{
    for (Frame &f : frames_) {
        for (Value &v : f.locals)
            fn(v);
        for (Value &v : f.stack)
            fn(v);
    }
}

} // namespace beehive::vm
