#include "vm/race_oracle.h"

#include <tuple>

#include "support/logging.h"
#include "support/strutil.h"

namespace beehive::vm {

bool
RaceOracle::Loc::operator<(const Loc &o) const
{
    return std::tie(kind, obj, klass, slot) <
           std::tie(o.kind, o.obj, o.klass, o.slot);
}

int
RaceOracle::newThread(int parent)
{
    const int tid = static_cast<int>(threads_.size());
    Clock c(tid + 1, 0);
    if (parent >= 0) {
        bh_assert(static_cast<std::size_t>(parent) < threads_.size(),
                  "bad parent tid");
        // Fork edge: everything the parent did so far happens
        // before everything the child will do.
        joinInto(c, threads_[parent]);
        threads_[parent][parent]++;
    }
    c[tid] = 1;
    threads_.push_back(std::move(c));
    return tid;
}

uint64_t
RaceOracle::clockOf(int tid, int observer_tid) const
{
    const Clock &c = threads_[observer_tid];
    return static_cast<std::size_t>(tid) < c.size() ? c[tid] : 0;
}

void
RaceOracle::joinInto(Clock &dst, const Clock &src)
{
    if (dst.size() < src.size())
        dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
}

void
RaceOracle::acquire(int tid, Ref monitor)
{
    auto it = monitors_.find(monitor);
    if (it != monitors_.end())
        joinInto(threads_[tid], it->second);
}

void
RaceOracle::release(int tid, Ref monitor)
{
    monitors_[monitor] = threads_[tid];
    threads_[tid][tid]++;
}

void
RaceOracle::ordered(int before_tid, int after_tid)
{
    joinInto(threads_[after_tid], threads_[before_tid]);
    threads_[before_tid][before_tid]++;
}

void
RaceOracle::raceAt(const Loc &loc, int tid, int other)
{
    RaceScope scope{loc.kind, loc.klass, loc.slot};
    if (races_.insert(scope).second)
        reports_.push_back(strprintf(
            "race on %s: contexts %d and %d unordered",
            toString(scope, program_).c_str(), other, tid));
}

void
RaceOracle::access(const Loc &loc, int tid, bool is_write)
{
    ++checks_;
    Shadow &sh = shadow_[loc];
    const Clock &now = threads_[tid];

    // The previous write must happen before this access.
    if (sh.write_tid >= 0 && sh.write_tid != tid &&
        sh.write_clock > clockOf(sh.write_tid, tid))
        raceAt(loc, tid, sh.write_tid);

    if (is_write) {
        // ... and so must every read since that write.
        for (const auto &[rtid, rclock] : sh.reads)
            if (rtid != tid && rclock > clockOf(rtid, tid))
                raceAt(loc, tid, rtid);
        sh.write_tid = tid;
        sh.write_clock = now[tid];
        sh.reads.clear();
    } else {
        sh.reads[tid] = now[tid];
    }
}

void
RaceOracle::fieldAccess(int tid, Ref obj, KlassId klass,
                        uint32_t slot, bool is_write)
{
    access(Loc{AccessRecord::Scope::Field, obj, klass, slot}, tid,
           is_write);
}

void
RaceOracle::staticAccess(int tid, KlassId klass, uint32_t slot,
                         bool is_write)
{
    access(Loc{AccessRecord::Scope::Static, kNullRef, klass, slot},
           tid, is_write);
}

void
RaceOracle::elementAccess(int tid, Ref arr, KlassId klass,
                          bool is_write)
{
    access(Loc{AccessRecord::Scope::Element, arr, klass, 0}, tid,
           is_write);
}

void
RaceOracle::volatileAccess(int tid, Ref obj, KlassId klass,
                           uint32_t slot, bool is_write)
{
    // Volatiles synchronize instead of racing: a write releases the
    // writer's clock into the location, a read acquires it.
    Loc loc{AccessRecord::Scope::Field, obj, klass, slot};
    if (is_write) {
        Clock &vc = volatile_clocks_[loc];
        joinInto(vc, threads_[tid]);
        threads_[tid][tid]++;
    } else {
        auto it = volatile_clocks_.find(loc);
        if (it != volatile_clocks_.end())
            joinInto(threads_[tid], it->second);
    }
}

} // namespace beehive::vm
