#include "vm/verifier.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "support/strutil.h"

namespace beehive::vm {

namespace {

/**
 * Abstract value of the verifier's lattice. Kinds mirror Value::Kind
 * plus the joins the dataflow needs: Num (int-or-float), Any
 * (statically unknown: arguments, field loads, call results).
 * Refinements sharpen Ref (shape, klass, array length) and Int
 * (constant) so field indices and array bounds can be checked.
 */
struct AbsType
{
    enum class Kind : uint8_t { Nil, Int, Float, Num, Ref, Any };
    enum class Shape : uint8_t { Unknown, Plain, Array, Bytes };

    Kind kind = Kind::Any;
    Shape shape = Shape::Unknown; //!< Ref only
    KlassId klass = kNoKlass;     //!< Ref/Plain: instance klass
    bool len_known = false;       //!< Ref/Array: length known
    uint32_t len = 0;
    bool const_known = false;     //!< Int: constant known
    int64_t cval = 0;

    static AbsType any() { return AbsType{}; }

    static AbsType
    nil()
    {
        AbsType t;
        t.kind = Kind::Nil;
        return t;
    }

    static AbsType
    integer()
    {
        AbsType t;
        t.kind = Kind::Int;
        return t;
    }

    static AbsType
    intConst(int64_t v)
    {
        AbsType t = integer();
        t.const_known = true;
        t.cval = v;
        return t;
    }

    static AbsType
    floating()
    {
        AbsType t;
        t.kind = Kind::Float;
        return t;
    }

    static AbsType
    number()
    {
        AbsType t;
        t.kind = Kind::Num;
        return t;
    }

    static AbsType
    obj(KlassId k)
    {
        AbsType t;
        t.kind = Kind::Ref;
        t.shape = Shape::Plain;
        t.klass = k;
        return t;
    }

    static AbsType
    array(bool len_known, uint32_t len)
    {
        AbsType t;
        t.kind = Kind::Ref;
        t.shape = Shape::Array;
        t.len_known = len_known;
        t.len = len;
        return t;
    }

    static AbsType
    bytesObj()
    {
        AbsType t;
        t.kind = Kind::Ref;
        t.shape = Shape::Bytes;
        return t;
    }

    bool isNumeric() const
    {
        return kind == Kind::Int || kind == Kind::Float ||
               kind == Kind::Num;
    }
    bool isRef() const { return kind == Kind::Ref; }

    bool
    operator==(const AbsType &o) const
    {
        return kind == o.kind && shape == o.shape &&
               klass == o.klass && len_known == o.len_known &&
               len == o.len && const_known == o.const_known &&
               cval == o.cval;
    }
    bool operator!=(const AbsType &o) const { return !(*this == o); }

    const char *
    name() const
    {
        switch (kind) {
          case Kind::Nil: return "nil";
          case Kind::Int: return "int";
          case Kind::Float: return "float";
          case Kind::Num: return "num";
          case Kind::Ref:
            switch (shape) {
              case Shape::Plain: return "ref";
              case Shape::Array: return "array";
              case Shape::Bytes: return "bytes";
              case Shape::Unknown: return "ref?";
            }
            return "ref";
          case Kind::Any: return "any";
        }
        return "?";
    }
};

/** Least upper bound of two abstract values. */
AbsType
merge(const AbsType &a, const AbsType &b)
{
    if (a == b)
        return a;
    if (a.kind == b.kind) {
        switch (a.kind) {
          case AbsType::Kind::Int: {
            // Constants disagree (equal ones hit the a == b case).
            return AbsType::integer();
          }
          case AbsType::Kind::Ref: {
            if (a.shape != b.shape) {
                AbsType t;
                t.kind = AbsType::Kind::Ref;
                return t;
            }
            AbsType t = a;
            if (t.klass != b.klass)
                t.klass = kNoKlass;
            if (!b.len_known || !a.len_known || a.len != b.len) {
                t.len_known = false;
                t.len = 0;
            }
            return t;
          }
          default:
            return a;
        }
    }
    if (a.isNumeric() && b.isNumeric())
        return AbsType::number();
    return AbsType::any();
}

const char *
opMnemonic(Op op)
{
    switch (op) {
      case Op::Nop: return "Nop";
      case Op::PushI: return "PushI";
      case Op::PushF: return "PushF";
      case Op::PushNil: return "PushNil";
      case Op::Load: return "Load";
      case Op::Store: return "Store";
      case Op::Dup: return "Dup";
      case Op::Pop: return "Pop";
      case Op::Swap: return "Swap";
      case Op::Add: return "Add";
      case Op::Sub: return "Sub";
      case Op::Mul: return "Mul";
      case Op::Div: return "Div";
      case Op::Mod: return "Mod";
      case Op::Neg: return "Neg";
      case Op::CmpEq: return "CmpEq";
      case Op::CmpNe: return "CmpNe";
      case Op::CmpLt: return "CmpLt";
      case Op::CmpLe: return "CmpLe";
      case Op::CmpGt: return "CmpGt";
      case Op::CmpGe: return "CmpGe";
      case Op::And: return "And";
      case Op::Or: return "Or";
      case Op::Not: return "Not";
      case Op::Jmp: return "Jmp";
      case Op::Jz: return "Jz";
      case Op::Jnz: return "Jnz";
      case Op::New: return "New";
      case Op::GetField: return "GetField";
      case Op::PutField: return "PutField";
      case Op::NewArr: return "NewArr";
      case Op::ALoad: return "ALoad";
      case Op::AStore: return "AStore";
      case Op::ArrLen: return "ArrLen";
      case Op::NewBytes: return "NewBytes";
      case Op::BytesLen: return "BytesLen";
      case Op::GetStatic: return "GetStatic";
      case Op::PutStatic: return "PutStatic";
      case Op::Call: return "Call";
      case Op::CallVirt: return "CallVirt";
      case Op::CallNative: return "CallNative";
      case Op::Ret: return "Ret";
      case Op::MonitorEnter: return "MonitorEnter";
      case Op::MonitorExit: return "MonitorExit";
      case Op::GetVolatile: return "GetVolatile";
      case Op::PutVolatile: return "PutVolatile";
      case Op::Compute: return "Compute";
    }
    return "?";
}

bool
isBranch(Op op)
{
    return op == Op::Jmp || op == Op::Jz || op == Op::Jnz;
}

} // namespace

std::size_t
VerifyResult::errorCount() const
{
    return static_cast<std::size_t>(std::count_if(
        diagnostics.begin(), diagnostics.end(), [](const Diagnostic &d) {
            return d.severity == Severity::Error;
        }));
}

std::size_t
VerifyResult::warningCount() const
{
    return diagnostics.size() - errorCount();
}

const char *
diagCodeName(DiagCode code)
{
    switch (code) {
      case DiagCode::BadJumpTarget: return "bad-jump";
      case DiagCode::StackUnderflow: return "stack-underflow";
      case DiagCode::MergeMismatch: return "merge-mismatch";
      case DiagCode::BadLocalSlot: return "bad-local-slot";
      case DiagCode::BadKlassId: return "bad-klass-id";
      case DiagCode::BadMethodId: return "bad-method-id";
      case DiagCode::BadNameId: return "bad-name-id";
      case DiagCode::BadStringIndex: return "bad-string-index";
      case DiagCode::BadFieldIndex: return "bad-field-index";
      case DiagCode::BadStaticSlot: return "bad-static-slot";
      case DiagCode::BadCallArity: return "bad-call-arity";
      case DiagCode::BadImmediate: return "bad-immediate";
      case DiagCode::FallOffEnd: return "fall-off-end";
      case DiagCode::UnbalancedMonitor: return "unbalanced-monitor";
      case DiagCode::TypeMismatch: return "type-mismatch";
      case DiagCode::UnreachableCode: return "unreachable-code";
    }
    return "?";
}

std::string
toString(const Diagnostic &d, const Program &program)
{
    const char *sev =
        d.severity == Severity::Error ? "error" : "warning";
    std::string where = "?";
    if (d.method != kNoMethod && d.method < program.methodCount())
        where = program.qualifiedName(d.method);
    return strprintf("%s: %s+%u: [%s] %s", sev, where.c_str(), d.pc,
                     diagCodeName(d.code), d.message.c_str());
}

/** Dataflow state at one program point. */
struct Verifier::State
{
    std::vector<AbsType> locals;
    std::vector<AbsType> stack;
    int monitors = 0;
    bool reached = false;
};

Verifier::Verifier(const Program &program, VerifyOptions options)
    : program_(program), options_(options)
{
}

VerifyResult
Verifier::verifyAll() const
{
    VerifyResult out;
    for (MethodId id = 0; id < program_.methodCount(); ++id)
        verifyMethod(id, out);
    return out;
}

void
Verifier::verifyMethod(MethodId id, VerifyResult &out) const
{
    const Method &m = program_.method(id);
    if (m.is_native)
        return; // no bytecode to verify

    auto emit = [&](Severity sev, DiagCode code, uint32_t pc,
                    std::string msg) {
        Diagnostic d;
        d.severity = sev;
        d.code = code;
        d.method = id;
        d.pc = pc;
        d.message = std::move(msg);
        out.diagnostics.push_back(std::move(d));
    };

    if (m.code.empty()) {
        emit(Severity::Error, DiagCode::FallOffEnd, 0,
             "method has no code and no Ret");
        return;
    }
    if (m.num_args > m.num_locals) {
        emit(Severity::Error, DiagCode::BadLocalSlot, 0,
             strprintf("num_args %u exceeds num_locals %u",
                       m.num_args, m.num_locals));
        return;
    }

    // ---- Flat operand validation over every instruction ---------
    // These checks need no dataflow, so they also cover unreachable
    // code. Any error here aborts the dataflow pass: simulating with
    // malformed operands would only cascade.
    const std::size_t n = m.code.size();
    std::size_t flat_errors = 0;
    auto err = [&](DiagCode code, uint32_t pc, std::string msg) {
        emit(Severity::Error, code, pc, std::move(msg));
        ++flat_errors;
    };

    for (uint32_t pc = 0; pc < n; ++pc) {
        const Instr &in = m.code[pc];
        switch (in.op) {
          case Op::Jmp: case Op::Jz: case Op::Jnz:
            if (in.a < 0 || static_cast<std::size_t>(in.a) >= n)
                err(DiagCode::BadJumpTarget, pc,
                    strprintf("%s target %lld outside [0, %zu)",
                              opMnemonic(in.op),
                              static_cast<long long>(in.a), n));
            break;
          case Op::Load: case Op::Store:
            if (in.a < 0 ||
                static_cast<std::size_t>(in.a) >= m.num_locals)
                err(DiagCode::BadLocalSlot, pc,
                    strprintf("%s slot %lld outside %u locals",
                              opMnemonic(in.op),
                              static_cast<long long>(in.a),
                              m.num_locals));
            break;
          case Op::New: case Op::NewArr:
            if (in.a < 0 ||
                static_cast<std::size_t>(in.a) >=
                    program_.klassCount())
                err(DiagCode::BadKlassId, pc,
                    strprintf("%s klass id %lld out of range",
                              opMnemonic(in.op),
                              static_cast<long long>(in.a)));
            break;
          case Op::GetStatic: case Op::PutStatic: {
            if (in.a < 0 ||
                static_cast<std::size_t>(in.a) >=
                    program_.klassCount()) {
                err(DiagCode::BadKlassId, pc,
                    strprintf("%s klass id %lld out of range",
                              opMnemonic(in.op),
                              static_cast<long long>(in.a)));
                break;
            }
            const Klass &k =
                program_.klass(static_cast<KlassId>(in.a));
            if (in.b < 0 ||
                static_cast<std::size_t>(in.b) >= k.statics.size())
                err(DiagCode::BadStaticSlot, pc,
                    strprintf("%s slot %lld outside %zu statics "
                              "of %s",
                              opMnemonic(in.op),
                              static_cast<long long>(in.b),
                              k.statics.size(), k.name.c_str()));
            break;
          }
          case Op::GetField: case Op::PutField:
          case Op::GetVolatile: case Op::PutVolatile:
            if (in.a < 0)
                err(DiagCode::BadFieldIndex, pc,
                    strprintf("%s negative field index %lld",
                              opMnemonic(in.op),
                              static_cast<long long>(in.a)));
            break;
          case Op::Call: case Op::CallNative: {
            if (in.a < 0 ||
                static_cast<std::size_t>(in.a) >=
                    program_.methodCount()) {
                err(DiagCode::BadMethodId, pc,
                    strprintf("%s method id %lld out of range",
                              opMnemonic(in.op),
                              static_cast<long long>(in.a)));
                break;
            }
            const Method &callee =
                program_.method(static_cast<MethodId>(in.a));
            if (in.op == Op::CallNative && !callee.is_native)
                err(DiagCode::BadMethodId, pc,
                    strprintf("CallNative targets bytecode method "
                              "%s",
                              callee.name.c_str()));
            break;
          }
          case Op::CallVirt:
            if (in.a < 0 ||
                static_cast<std::size_t>(in.a) >=
                    program_.nameCount())
                err(DiagCode::BadNameId, pc,
                    strprintf("CallVirt name id %lld out of range",
                              static_cast<long long>(in.a)));
            if (in.b < 1)
                err(DiagCode::BadImmediate, pc,
                    "CallVirt needs at least the receiver "
                    "argument");
            break;
          case Op::NewBytes:
            if (in.a < 0 ||
                static_cast<std::size_t>(in.a) >=
                    program_.stringCount())
                err(DiagCode::BadStringIndex, pc,
                    strprintf("NewBytes string index %lld out of "
                              "range",
                              static_cast<long long>(in.a)));
            break;
          case Op::Compute:
            if (in.a < 0)
                err(DiagCode::BadImmediate, pc,
                    strprintf("Compute of negative duration %lld",
                              static_cast<long long>(in.a)));
            break;
          default:
            break;
        }
    }

    if (flat_errors > 0)
        return;

    analyzeDataflow(id, m, out);
}

void
Verifier::analyzeDataflow(MethodId id, const Method &m,
                          VerifyResult &out) const
{
    const std::size_t n = m.code.size();
    const bool strict = options_.strict_types;

    // The worklist re-executes a block whenever its entry state
    // changes, so body checks run more than once; report each
    // (pc, code) finding only the first time it fires.
    std::set<std::pair<uint32_t, uint8_t>> reported;
    auto emit = [&](Severity sev, DiagCode code, uint32_t pc,
                    std::string msg) {
        if (!reported.insert({pc, static_cast<uint8_t>(code)})
                 .second)
            return;
        Diagnostic d;
        d.severity = sev;
        d.code = code;
        d.method = id;
        d.pc = pc;
        d.message = std::move(msg);
        out.diagnostics.push_back(std::move(d));
    };

    // ---- Basic-block discovery ----------------------------------
    std::set<uint32_t> leaders;
    leaders.insert(0);
    for (uint32_t pc = 0; pc < n; ++pc) {
        const Instr &in = m.code[pc];
        if (isBranch(in.op)) {
            leaders.insert(static_cast<uint32_t>(in.a));
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        } else if (in.op == Op::Ret && pc + 1 < n) {
            leaders.insert(pc + 1);
        }
    }

    auto blockEnd = [&](uint32_t leader) {
        auto it = leaders.upper_bound(leader);
        return it == leaders.end() ? static_cast<uint32_t>(n) : *it;
    };

    // ---- Worklist dataflow --------------------------------------
    std::map<uint32_t, State> states;
    std::deque<uint32_t> work;
    std::set<uint32_t> queued;
    std::set<uint32_t> merge_reported; //!< dedupe join diagnostics
    bool aborted = false; //!< a block hit a non-recoverable error

    State entry;
    entry.reached = true;
    entry.locals.assign(m.num_locals, AbsType::nil());
    for (uint16_t i = 0; i < m.num_args; ++i)
        entry.locals[i] = AbsType::any();
    states[0] = entry;
    work.push_back(0);
    queued.insert(0);

    auto join = [&](uint32_t target, const State &s) {
        auto it = states.find(target);
        if (it == states.end()) {
            states[target] = s;
            if (queued.insert(target).second)
                work.push_back(target);
            return;
        }
        State &t = it->second;
        if (t.stack.size() != s.stack.size()) {
            if (merge_reported.insert(target).second)
                emit(Severity::Error, DiagCode::MergeMismatch,
                     target,
                     strprintf("stack depth %zu meets %zu at merge "
                               "point",
                               t.stack.size(), s.stack.size()));
            return;
        }
        if (t.monitors != s.monitors) {
            if (merge_reported.insert(target | 0x80000000u).second)
                emit(Severity::Error, DiagCode::UnbalancedMonitor,
                     target,
                     strprintf("monitor depth %d meets %d at merge "
                               "point",
                               t.monitors, s.monitors));
            return;
        }
        bool changed = false;
        for (std::size_t i = 0; i < t.stack.size(); ++i) {
            AbsType merged = merge(t.stack[i], s.stack[i]);
            if (merged != t.stack[i]) {
                t.stack[i] = merged;
                changed = true;
            }
        }
        for (std::size_t i = 0; i < t.locals.size(); ++i) {
            AbsType merged = merge(t.locals[i], s.locals[i]);
            if (merged != t.locals[i]) {
                t.locals[i] = merged;
                changed = true;
            }
        }
        if (changed && queued.insert(target).second)
            work.push_back(target);
    };

    while (!work.empty() && !aborted) {
        uint32_t leader = work.front();
        work.pop_front();
        queued.erase(leader);

        State st = states[leader];
        st.reached = true;
        states[leader].reached = true;
        uint32_t end = blockEnd(leader);
        bool terminated = false; //!< Ret or Jmp ended the block

        for (uint32_t pc = leader; pc < end && !aborted; ++pc) {
            const Instr &in = m.code[pc];

            // Shared primitive steps. pop/need abort the block on
            // underflow: subsequent effects would be garbage.
            auto need = [&](std::size_t depth) {
                if (st.stack.size() >= depth)
                    return true;
                emit(Severity::Error, DiagCode::StackUnderflow, pc,
                     strprintf("%s needs %zu operand(s), stack has "
                               "%zu",
                               opMnemonic(in.op), depth,
                               st.stack.size()));
                aborted = true;
                return false;
            };
            auto pop = [&] {
                AbsType t = st.stack.back();
                st.stack.pop_back();
                return t;
            };
            auto push = [&](AbsType t) {
                st.stack.push_back(std::move(t));
            };
            auto peekAt = [&](std::size_t depth) -> AbsType & {
                return st.stack[st.stack.size() - 1 - depth];
            };

            /** A value about to be dereferenced. */
            auto checkRef = [&](const AbsType &t, const char *what) {
                if (t.isRef())
                    return;
                if (t.kind == AbsType::Kind::Any) {
                    if (strict)
                        emit(Severity::Error, DiagCode::TypeMismatch,
                             pc,
                             strprintf("%s dereferences a value of "
                                       "statically unknown kind",
                                       what));
                    return;
                }
                emit(Severity::Error, DiagCode::TypeMismatch, pc,
                     strprintf("%s dereferences a %s value", what,
                               t.name()));
            };

            /** A value used as an array index / length. */
            auto checkInt = [&](const AbsType &t, const char *what) {
                if (t.kind == AbsType::Kind::Int)
                    return;
                if (t.kind == AbsType::Kind::Any ||
                    t.kind == AbsType::Kind::Num) {
                    if (strict)
                        emit(Severity::Error, DiagCode::TypeMismatch,
                             pc,
                             strprintf("%s is not provably an int",
                                       what));
                    return;
                }
                emit(Severity::Error, DiagCode::TypeMismatch, pc,
                     strprintf("%s is a %s value, int required",
                               what, t.name()));
            };

            /** Field access against a known receiver klass. */
            auto checkFieldIndex = [&](const AbsType &recv) {
                if (recv.kind == AbsType::Kind::Ref &&
                    recv.shape == AbsType::Shape::Plain &&
                    recv.klass != kNoKlass) {
                    uint32_t fields =
                        program_.fieldCount(recv.klass);
                    if (static_cast<uint64_t>(in.a) >= fields)
                        emit(Severity::Error,
                             DiagCode::BadFieldIndex, pc,
                             strprintf(
                                 "%s index %lld outside %u fields "
                                 "of %s",
                                 opMnemonic(in.op),
                                 static_cast<long long>(in.a),
                                 fields,
                                 program_.klass(recv.klass)
                                     .name.c_str()));
                } else if (strict) {
                    emit(Severity::Error, DiagCode::TypeMismatch, pc,
                         strprintf("%s on a receiver of statically "
                                   "unknown klass",
                                   opMnemonic(in.op)));
                }
            };

            switch (in.op) {
              case Op::Nop:
              case Op::Compute:
                break;

              case Op::PushI:
                push(AbsType::intConst(in.a));
                break;
              case Op::PushF:
                push(AbsType::floating());
                break;
              case Op::PushNil:
                push(AbsType::nil());
                break;

              case Op::Load:
                push(st.locals[in.a]);
                break;
              case Op::Store:
                if (!need(1))
                    break;
                st.locals[in.a] = pop();
                break;

              case Op::Dup:
                if (!need(1))
                    break;
                push(peekAt(0));
                break;
              case Op::Pop:
                if (!need(1))
                    break;
                pop();
                break;
              case Op::Swap:
                if (!need(2))
                    break;
                std::swap(peekAt(0), peekAt(1));
                break;

              case Op::Add: case Op::Sub: case Op::Mul:
              case Op::Div: case Op::Mod: {
                if (!need(2))
                    break;
                AbsType b = pop();
                AbsType a = pop();
                for (const AbsType *t : {&a, &b}) {
                    if (t->isRef() || t->kind == AbsType::Kind::Nil)
                        emit(Severity::Warning,
                             DiagCode::TypeMismatch, pc,
                             strprintf("%s on a %s operand",
                                       opMnemonic(in.op),
                                       t->name()));
                }
                if (a.kind == AbsType::Kind::Int &&
                    b.kind == AbsType::Kind::Int)
                    push(AbsType::integer());
                else if (a.kind == AbsType::Kind::Float ||
                         b.kind == AbsType::Kind::Float)
                    push(AbsType::floating());
                else
                    push(AbsType::number());
                break;
              }

              case Op::Neg: {
                if (!need(1))
                    break;
                AbsType a = pop();
                if (a.kind == AbsType::Kind::Int)
                    push(AbsType::integer());
                else if (a.kind == AbsType::Kind::Float)
                    push(AbsType::floating());
                else
                    push(AbsType::number());
                break;
              }

              case Op::CmpEq: case Op::CmpNe:
              case Op::CmpLt: case Op::CmpLe:
              case Op::CmpGt: case Op::CmpGe:
              case Op::And: case Op::Or:
                if (!need(2))
                    break;
                pop();
                pop();
                push(AbsType::integer());
                break;

              case Op::Not:
                if (!need(1))
                    break;
                pop();
                push(AbsType::integer());
                break;

              case Op::Jz: case Op::Jnz:
                if (!need(1))
                    break;
                pop();
                break;

              case Op::Jmp:
                break;

              case Op::New:
                push(AbsType::obj(static_cast<KlassId>(in.a)));
                break;

              case Op::NewArr: {
                if (!need(1))
                    break;
                AbsType len = pop();
                checkInt(len, "NewArr length");
                if (len.kind == AbsType::Kind::Int &&
                    len.const_known && len.cval < 0)
                    emit(Severity::Error, DiagCode::BadImmediate,
                         pc,
                         strprintf("NewArr of negative length %lld",
                                   static_cast<long long>(
                                       len.cval)));
                else if (strict && !len.const_known)
                    emit(Severity::Error, DiagCode::TypeMismatch,
                         pc,
                         "NewArr length is not provably "
                         "non-negative");
                bool known = len.kind == AbsType::Kind::Int &&
                             len.const_known && len.cval >= 0;
                push(AbsType::array(
                    known, known ? static_cast<uint32_t>(len.cval)
                                 : 0));
                break;
              }

              case Op::NewBytes:
                push(AbsType::bytesObj());
                break;

              case Op::BytesLen:
              case Op::ArrLen:
                if (!need(1))
                    break;
                checkRef(peekAt(0), opMnemonic(in.op));
                pop();
                push(AbsType::integer());
                break;

              case Op::GetField:
              case Op::GetVolatile: {
                if (!need(1))
                    break;
                AbsType recv = pop();
                checkRef(recv, opMnemonic(in.op));
                checkFieldIndex(recv);
                push(AbsType::any());
                break;
              }

              case Op::PutField:
              case Op::PutVolatile: {
                if (!need(2))
                    break;
                pop(); // value
                AbsType recv = pop();
                checkRef(recv, opMnemonic(in.op));
                checkFieldIndex(recv);
                break;
              }

              case Op::ALoad: {
                if (!need(2))
                    break;
                AbsType idx = pop();
                AbsType arr = pop();
                checkInt(idx, "ALoad index");
                checkRef(arr, "ALoad");
                if (arr.kind == AbsType::Kind::Ref &&
                    arr.shape == AbsType::Shape::Array &&
                    arr.len_known && idx.const_known &&
                    (idx.cval < 0 ||
                     idx.cval >= static_cast<int64_t>(arr.len)))
                    emit(Severity::Error, DiagCode::BadFieldIndex,
                         pc,
                         strprintf("ALoad index %lld outside array "
                                   "of length %u",
                                   static_cast<long long>(idx.cval),
                                   arr.len));
                else if (strict &&
                         !(arr.shape == AbsType::Shape::Array &&
                           arr.len_known && idx.const_known))
                    emit(Severity::Error, DiagCode::TypeMismatch,
                         pc,
                         "ALoad bounds not statically provable");
                push(AbsType::any());
                break;
              }

              case Op::AStore: {
                if (!need(3))
                    break;
                pop(); // value
                AbsType idx = pop();
                AbsType arr = pop();
                checkInt(idx, "AStore index");
                checkRef(arr, "AStore");
                if (arr.kind == AbsType::Kind::Ref &&
                    arr.shape == AbsType::Shape::Array &&
                    arr.len_known && idx.const_known &&
                    (idx.cval < 0 ||
                     idx.cval >= static_cast<int64_t>(arr.len)))
                    emit(Severity::Error, DiagCode::BadFieldIndex,
                         pc,
                         strprintf("AStore index %lld outside "
                                   "array of length %u",
                                   static_cast<long long>(idx.cval),
                                   arr.len));
                else if (strict &&
                         !(arr.shape == AbsType::Shape::Array &&
                           arr.len_known && idx.const_known))
                    emit(Severity::Error, DiagCode::TypeMismatch,
                         pc,
                         "AStore bounds not statically provable");
                break;
              }

              case Op::GetStatic:
                push(AbsType::any());
                break;
              case Op::PutStatic:
                if (!need(1))
                    break;
                pop();
                break;

              case Op::Call:
              case Op::CallNative: {
                const Method &callee =
                    program_.method(static_cast<MethodId>(in.a));
                if (!need(callee.num_args))
                    break;
                for (uint16_t i = 0; i < callee.num_args; ++i)
                    pop();
                push(AbsType::any());
                break;
              }

              case Op::CallVirt: {
                uint16_t nargs = static_cast<uint16_t>(in.b);
                if (!need(nargs))
                    break;
                AbsType recv = peekAt(nargs - 1);
                checkRef(recv, "CallVirt receiver");
                if (recv.kind == AbsType::Kind::Ref &&
                    recv.shape == AbsType::Shape::Plain &&
                    recv.klass != kNoKlass) {
                    MethodId resolved = program_.resolveVirtual(
                        recv.klass, static_cast<NameId>(in.a));
                    if (resolved == kNoMethod)
                        emit(Severity::Error, DiagCode::BadMethodId,
                             pc,
                             strprintf(
                                 "no virtual %s on %s",
                                 program_
                                     .nameAt(static_cast<NameId>(
                                         in.a))
                                     .c_str(),
                                 program_.klass(recv.klass)
                                     .name.c_str()));
                    else if (program_.method(resolved).num_args !=
                             nargs)
                        emit(Severity::Error, DiagCode::BadCallArity,
                             pc,
                             strprintf(
                                 "CallVirt passes %u args, %s "
                                 "takes %u",
                                 nargs,
                                 program_.qualifiedName(resolved)
                                     .c_str(),
                                 program_.method(resolved)
                                     .num_args));
                } else if (strict) {
                    emit(Severity::Error, DiagCode::TypeMismatch,
                         pc,
                         "CallVirt receiver klass not statically "
                         "known");
                }
                for (uint16_t i = 0; i < nargs; ++i)
                    pop();
                push(AbsType::any());
                break;
              }

              case Op::MonitorEnter:
                if (!need(1))
                    break;
                checkRef(peekAt(0), "MonitorEnter");
                pop();
                ++st.monitors;
                break;

              case Op::MonitorExit:
                if (!need(1))
                    break;
                checkRef(peekAt(0), "MonitorExit");
                pop();
                if (st.monitors == 0)
                    emit(Severity::Error,
                         DiagCode::UnbalancedMonitor, pc,
                         "MonitorExit without a matching "
                         "MonitorEnter on this path");
                else
                    --st.monitors;
                break;

              case Op::Ret:
                if (st.monitors != 0)
                    emit(Severity::Error,
                         DiagCode::UnbalancedMonitor, pc,
                         strprintf("method returns still holding "
                                   "%d monitor(s)",
                                   st.monitors));
                terminated = true;
                break;
            }

            if (aborted || terminated)
                break;

            if (in.op == Op::Jmp) {
                join(static_cast<uint32_t>(in.a), st);
                terminated = true;
                break;
            }
            if (in.op == Op::Jz || in.op == Op::Jnz)
                join(static_cast<uint32_t>(in.a), st);
        }

        if (aborted || terminated)
            continue;

        // Fell through the end of the block.
        if (end >= n) {
            emit(Severity::Error, DiagCode::FallOffEnd,
                 static_cast<uint32_t>(n - 1),
                 "control reaches the end of the method without "
                 "Ret");
            continue;
        }
        join(end, st);
    }

    // ---- Unreachable-code report --------------------------------
    if (!options_.check_unreachable || aborted)
        return;
    std::vector<bool> reachable(n, false);
    for (const auto &[leader, st] : states) {
        if (!st.reached)
            continue;
        uint32_t end = blockEnd(leader);
        for (uint32_t pc = leader; pc < end; ++pc)
            reachable[pc] = true;
    }
    // A reached block stops at a terminal instruction; trailing
    // instructions of the block stay reachable=true because they
    // share the block (leaders split at every branch/Ret, so only
    // whole blocks are ever unreached).
    for (uint32_t pc = 0; pc < n;) {
        if (reachable[pc]) {
            ++pc;
            continue;
        }
        uint32_t start = pc;
        while (pc < n && !reachable[pc])
            ++pc;
        emit(Severity::Warning, DiagCode::UnreachableCode, start,
             strprintf("%u unreachable instruction(s) at [%u, %u)",
                       pc - start, start, pc));
    }
}

} // namespace beehive::vm
