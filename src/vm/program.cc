#include "vm/program.h"

#include <algorithm>

#include "support/logging.h"

namespace beehive::vm {

bool
Method::hasAnnotation(const std::string &name) const
{
    return std::any_of(annotations.begin(), annotations.end(),
                       [&](const Annotation &a) { return a.name == name; });
}

KlassId
Program::addKlass(Klass klass)
{
    bh_assert(klass_by_name_.find(klass.name) == klass_by_name_.end(),
              "duplicate klass %s", klass.name.c_str());
    KlassId id = static_cast<KlassId>(klasses_.size());
    klass_by_name_[klass.name] = id;
    klasses_.push_back(std::move(klass));
    touch();
    return id;
}

MethodId
Program::addMethod(KlassId owner, Method method)
{
    bh_assert(owner < klasses_.size(), "bad owner klass");
    method.owner = owner;
    MethodId id = static_cast<MethodId>(methods_.size());
    std::string qname = klasses_[owner].name + "." + method.name;
    bh_assert(method_by_qname_.find(qname) == method_by_qname_.end(),
              "duplicate method %s", qname.c_str());
    method_by_qname_[qname] = id;
    klasses_[owner].methods.push_back(id);
    methods_.push_back(std::move(method));
    touch();
    return id;
}

uint32_t
Program::internString(const std::string &s)
{
    auto it = string_ids_.find(s);
    if (it != string_ids_.end())
        return it->second;
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.push_back(s);
    string_ids_[s] = id;
    return id;
}

NameId
Program::internName(const std::string &s)
{
    auto it = name_ids_.find(s);
    if (it != name_ids_.end())
        return it->second;
    NameId id = static_cast<NameId>(names_.size());
    names_.push_back(s);
    name_ids_[s] = id;
    touch(); // widens every frozen vtable
    return id;
}

const Klass &
Program::klass(KlassId id) const
{
    bh_assert(id < klasses_.size(), "bad klass id %u", id);
    return klasses_[id];
}

Klass &
Program::klass(KlassId id)
{
    bh_assert(id < klasses_.size(), "bad klass id %u", id);
    // Mutable access may rewire methods/supers behind our back;
    // conservatively invalidate the frozen tables.
    touch();
    return klasses_[id];
}

const Method &
Program::method(MethodId id) const
{
    bh_assert(id < methods_.size(), "bad method id %u", id);
    return methods_[id];
}

Method &
Program::method(MethodId id)
{
    bh_assert(id < methods_.size(), "bad method id %u", id);
    touch(); // a renamed method would invalidate the vtables
    return methods_[id];
}

const std::string &
Program::stringAt(uint32_t idx) const
{
    bh_assert(idx < strings_.size(), "bad string index");
    return strings_[idx];
}

const std::string &
Program::nameAt(NameId id) const
{
    bh_assert(id < names_.size(), "bad name id");
    return names_[id];
}

KlassId
Program::findKlass(const std::string &name) const
{
    auto it = klass_by_name_.find(name);
    return it == klass_by_name_.end() ? kNoKlass : it->second;
}

MethodId
Program::findMethod(const std::string &qualified) const
{
    auto it = method_by_qname_.find(qualified);
    return it == method_by_qname_.end() ? kNoMethod : it->second;
}

MethodId
Program::resolveVirtualUncached(KlassId klass_id, NameId name) const
{
    const std::string &mname = nameAt(name);
    KlassId k = klass_id;
    while (k != kNoKlass) {
        const Klass &kl = klasses_[k];
        for (MethodId mid : kl.methods) {
            if (methods_[mid].name == mname)
                return mid;
        }
        k = kl.super;
    }
    return kNoMethod;
}

void
Program::freeze() const
{
    const std::size_t nnames = names_.size();
    vtable_stride_ = nnames;
    vtable_flat_.assign(klasses_.size() * nnames, kNoMethod);
    field_counts_.assign(klasses_.size(), 0);
    std::vector<char> built(klasses_.size(), 0);
    std::vector<KlassId> chain;
    for (KlassId root = 0; root < klasses_.size(); ++root) {
        if (built[root])
            continue;
        // Collect the unbuilt tail of the super chain, then build
        // top-down so each row starts from its super's.
        chain.clear();
        for (KlassId k = root; k != kNoKlass && !built[k];
             k = klasses_[k].super)
            chain.push_back(k);
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            const KlassId id = *it;
            const Klass &kl = klasses_[id];
            MethodId *vt = vtable_flat_.data() + id * nnames;
            if (kl.super != kNoKlass) {
                const MethodId *sup =
                    vtable_flat_.data() + kl.super * nnames;
                std::copy(sup, sup + nnames, vt); // inherit
                field_counts_[id] = field_counts_[kl.super];
            }
            field_counts_[id] +=
                static_cast<uint32_t>(kl.fields.size());
            // Method names within one klass are unique (addMethod
            // asserts the qualified name), so overriding the
            // inherited entry reproduces the walk's first-match
            // semantics exactly.
            for (MethodId mid : kl.methods) {
                auto nit = name_ids_.find(methods_[mid].name);
                if (nit != name_ids_.end())
                    vt[nit->second] = mid;
            }
            built[id] = 1;
        }
    }
    frozen_epoch_ = mutation_epoch_;
}

uint32_t
Program::fieldCount(KlassId id) const
{
    bh_assert(id < klasses_.size(), "bad klass id %u", id);
    if (frozen())
        return field_counts_[id];
    uint32_t count = 0;
    KlassId k = id;
    while (k != kNoKlass) {
        count += static_cast<uint32_t>(klasses_[k].fields.size());
        k = klasses_[k].super;
    }
    return count;
}

void
Program::hintStatic(KlassId klass_id, uint32_t slot, KlassId type,
                    KlassId elem)
{
    Klass &k = klass(klass_id);
    bh_assert(slot < k.statics.size(), "bad static slot %u", slot);
    if (k.static_hints.size() <= slot)
        k.static_hints.resize(k.statics.size());
    k.static_hints[slot] = TypeHint{type, elem};
}

void
Program::hintField(KlassId klass_id, uint32_t index, KlassId type,
                   KlassId elem)
{
    Klass &k = klass(klass_id);
    bh_assert(index < fieldCount(klass_id), "bad field index %u", index);
    if (k.field_hints.size() <= index)
        k.field_hints.resize(index + 1);
    k.field_hints[index] = TypeHint{type, elem};
}

TypeHint
Program::staticHint(KlassId klass_id, uint32_t slot) const
{
    const Klass &k = klass(klass_id);
    if (slot < k.static_hints.size())
        return k.static_hints[slot];
    return TypeHint{};
}

TypeHint
Program::fieldHint(KlassId klass_id, uint32_t index) const
{
    // Field indices are flat across the super chain, so any klass in
    // the chain may carry the declaration.
    KlassId k = klass_id;
    while (k != kNoKlass) {
        const Klass &kl = klass(k);
        if (index < kl.field_hints.size()
            && kl.field_hints[index].type != kNoKlass)
            return kl.field_hints[index];
        k = kl.super;
    }
    return TypeHint{};
}

std::string
Program::qualifiedName(MethodId id) const
{
    if (id >= methods_.size())
        return "<bad-method>";
    const Method &m = methods_[id];
    if (m.owner >= klasses_.size())
        return m.name;
    return klasses_[m.owner].name + "." + m.name;
}

std::vector<MethodId>
Program::methodsWithAnnotation(const std::string &name) const
{
    std::vector<MethodId> out;
    for (MethodId id = 0; id < methods_.size(); ++id) {
        if (methods_[id].hasAnnotation(name))
            out.push_back(id);
    }
    return out;
}

} // namespace beehive::vm
