#include "vm/reachability_analysis.h"

#include <algorithm>
#include <deque>
#include <set>

#include "support/logging.h"
#include "vm/context.h"
#include "vm/heap.h"

namespace beehive::vm {

ReachabilityAnalysis::ReachabilityAnalysis(
    const Program &program, const ProgramAnalysis &analysis)
    : program_(program), analysis_(analysis)
{
    const std::size_t n = program_.klassCount();
    cones_.resize(n);
    for (KlassId k = 0; k < n; ++k)
        cones_[k].push_back(k);
    // Every klass is in the cone of each of its (transitive)
    // superclasses; one super-chain walk per klass covers them all.
    for (KlassId k = 0; k < n; ++k) {
        KlassId s = program_.klass(k).super;
        while (s != kNoKlass) {
            cones_[s].push_back(k);
            s = program_.klass(s).super;
        }
    }
    for (auto &cone : cones_)
        std::sort(cone.begin(), cone.end());
}

const std::vector<KlassId> &
ReachabilityAnalysis::subclassCone(KlassId k) const
{
    bh_assert(k < cones_.size(), "bad klass id %u", k);
    return cones_[k];
}

ReachReport
ReachabilityAnalysis::analyzeRoot(MethodId root) const
{
    ReachReport out;
    out.root = root;
    if (root >= program_.methodCount()) {
        out.footprint.all_fields = true;
        ++out.escape_hatches;
        return out;
    }

    // Method closure: the devirtualized call graph, re-expanding
    // every VirtualSite over the receiver hint's subclass cone so a
    // subclass override hidden behind a superclass hint cannot be
    // missed.
    std::set<MethodId> visited;
    std::deque<MethodId> work;
    visited.insert(root);
    work.push_back(root);
    const CallGraph &cg = analysis_.callGraph();
    auto enqueue = [&](MethodId m) {
        if (m < program_.methodCount() && visited.insert(m).second)
            work.push_back(m);
    };
    while (!work.empty()) {
        MethodId m = work.front();
        work.pop_front();
        for (MethodId c : cg.callees[m])
            enqueue(c);
        for (MethodId c : cg.natives[m])
            enqueue(c);
        for (const VirtualSite &site : analysis_.virtualSites(m)) {
            MethodId devirt =
                program_.resolveVirtual(site.receiver, site.name);
            for (KlassId k : subclassCone(site.receiver)) {
                MethodId r = program_.resolveVirtual(k, site.name);
                if (r == kNoMethod || visited.count(r))
                    continue;
                enqueue(r);
                if (r != devirt)
                    ++out.cone_expansions;
            }
        }
    }
    out.methods.assign(visited.begin(), visited.end());

    // Footprint: join the *intra* summaries of the expanded set.
    // transitiveSummary(root) would be cheaper but follows only the
    // devirtualized edges, so it can miss cone-added methods.
    for (MethodId m : out.methods) {
        const EffectSummary &s = analysis_.methodSummary(m);
        CaptureSet &fp = out.footprint;
        fp.statics.insert(s.statics_read.begin(),
                          s.statics_read.end());
        fp.statics.insert(s.statics_written.begin(),
                          s.statics_written.end());
        fp.fields.insert(s.fields_read.begin(),
                         s.fields_read.end());
        fp.any_klass_fields.insert(s.fields_read_any_klass.begin(),
                                   s.fields_read_any_klass.end());
        fp.full_klasses.insert(s.klasses_fully_read.begin(),
                               s.klasses_fully_read.end());
        if (s.unresolved_virtual)
            fp.all_fields = true;
        for (const EffectSite &site : s.sites) {
            if (site.kind == EffectSite::Kind::UnresolvedVirtual)
                ++out.escape_hatches;
        }
    }

    // Klass closure: everything the missing-code fallback can
    // requireKlass() while running the reachable set -- method
    // owners (faulted at every call), allocation operands, and
    // static-slot owners. NewBytes allocates the ambient byte klass
    // of the VM configuration, which is invisible in bytecode; it
    // is flagged for the caller to resolve.
    std::set<KlassId> klasses;
    auto add_klass = [&](KlassId k) {
        if (k != kNoKlass && k < program_.klassCount())
            klasses.insert(k);
    };
    for (MethodId m : out.methods) {
        const Method &method = program_.method(m);
        add_klass(method.owner);
        for (const Instr &in : method.code) {
            switch (in.op) {
              case Op::New:
              case Op::NewArr:
                add_klass(static_cast<KlassId>(in.a));
                break;
              case Op::NewBytes:
                out.needs_bytes_klass = true;
                break;
              case Op::GetStatic:
              case Op::PutStatic:
                add_klass(static_cast<KlassId>(in.a));
                break;
              default:
                break;
            }
        }
    }
    for (const auto &[k, slot] : out.footprint.statics)
        add_klass(k);
    for (KlassId k : out.footprint.full_klasses)
        add_klass(k);
    out.klasses.assign(klasses.begin(), klasses.end());
    return out;
}

std::vector<Ref>
ReachabilityAnalysis::resolveFootprint(const ReachReport &report,
                                       VmContext &server) const
{
    std::vector<Ref> out;
    std::set<Ref> seen;
    std::deque<Ref> work;
    Heap &heap = server.heap();
    auto visit = [&](Value v) {
        if (!v.isRef())
            return;
        Ref r = stripRemote(v.asRef());
        if (r == kNullRef || !seen.insert(r).second)
            return;
        out.push_back(r);
        work.push_back(r);
    };

    // Roots: the footprint's static slots, in set (deterministic)
    // order. Slots beyond the klass's declared statics can only
    // come from malformed bytecode the verifier flags; skip them.
    for (const auto &[k, slot] : report.footprint.statics) {
        if (k >= program_.klassCount() || !server.isLoaded(k))
            continue;
        if (slot >= program_.klass(k).statics.size())
            continue;
        visit(server.getStatic(k, slot));
    }

    while (!work.empty()) {
        Ref r = work.front();
        work.pop_front();
        const ObjHeader &hdr = heap.header(r);
        switch (hdr.kind) {
          case ObjKind::Plain:
            for (uint32_t i = 0; i < hdr.count; ++i) {
                if (report.footprint.containsField(hdr.klass, i))
                    visit(heap.field(r, i));
            }
            break;
          case ObjKind::Array:
            // Element access paths are not tracked per index; any
            // reachable array contributes every element.
            for (uint32_t i = 0; i < hdr.count; ++i)
                visit(heap.elem(r, i));
            break;
          default: // Bytes: no reference slots
            break;
        }
    }
    return out;
}

} // namespace beehive::vm
