#include "vm/context.h"

#include "support/logging.h"
#include "vm/profiler.h"

namespace beehive::vm {

VmContext::VmContext(const Program &program, NativeRegistry &natives,
                     Heap &heap, VmConfig config)
    : program_(program), natives_(natives), heap_(heap),
      config_(config), loaded_(program.klassCount(), false)
{
}

bool
VmContext::isLoaded(KlassId id) const
{
    bh_assert(id < loaded_.size(), "bad klass id");
    return loaded_[id];
}

void
VmContext::loadKlass(KlassId id)
{
    bh_assert(id < loaded_.size(), "bad klass id");
    if (loaded_[id])
        return;
    loaded_[id] = true;
    ++loaded_count_;
    // Statics come into existence (zeroed) when the klass loads.
    const Klass &k = program_.klass(id);
    if (!k.statics.empty()) {
        statics_.try_emplace(
            id, std::vector<Value>(k.statics.size(), Value::nil()));
    }
}

void
VmContext::loadAll()
{
    for (KlassId id = 0; id < program_.klassCount(); ++id)
        loadKlass(id);
}

Value
VmContext::getStatic(KlassId klass, uint32_t slot)
{
    auto it = statics_.find(klass);
    bh_assert(it != statics_.end(), "statics of unloaded klass");
    bh_assert(slot < it->second.size(), "bad static slot");
    return it->second[slot];
}

void
VmContext::setStatic(KlassId klass, uint32_t slot, Value v)
{
    auto it = statics_.find(klass);
    bh_assert(it != statics_.end(), "statics of unloaded klass");
    bh_assert(slot < it->second.size(), "bad static slot");
    it->second[slot] = v;
}

void
VmContext::forEachStatic(const std::function<void(Value &)> &fn)
{
    for (auto &[klass, slots] : statics_) {
        for (Value &v : slots)
            fn(v);
    }
}

void
VmContext::mapRemote(Ref remote, Ref local)
{
    remote_map_[stripRemote(remote)] = local;
}

Ref
VmContext::lookupRemote(Ref remote) const
{
    auto it = remote_map_.find(stripRemote(remote));
    return it == remote_map_.end() ? kNullRef : it->second;
}

double
VmContext::methodEntered(MethodId id)
{
    uint64_t &count = invocation_counts_[id];
    double mult = count < config_.jit_threshold ? config_.cold_multiplier
                                                : 1.0;
    ++count;
    return mult;
}

double
VmContext::costMultiplier(MethodId id) const
{
    auto it = invocation_counts_.find(id);
    uint64_t count = it == invocation_counts_.end() ? 0 : it->second;
    return count < config_.jit_threshold ? config_.cold_multiplier : 1.0;
}

uint64_t
VmContext::invocations(MethodId id) const
{
    auto it = invocation_counts_.find(id);
    return it == invocation_counts_.end() ? 0 : it->second;
}

VmContext::InlineCache &
VmContext::inlineCache(MethodId m, uint32_t pc)
{
    if (ic_lines_.size() <= m) {
        // Size for the whole program at once so later methods do not
        // trigger repeated regrowth.
        std::size_t want = program_.methodCount();
        if (want <= m)
            want = static_cast<std::size_t>(m) + 1;
        ic_lines_.resize(want);
    }
    std::vector<InlineCache> &lines = ic_lines_[m];
    if (lines.size() <= pc) {
        // One line per instruction of the owning method; sized on the
        // first CallVirt so methods without virtual calls stay empty.
        std::size_t want = program_.method(m).code.size();
        if (want <= pc)
            want = static_cast<std::size_t>(pc) + 1;
        lines.resize(want);
    }
    return lines[pc];
}

void
VmContext::forEachInlineCache(
    const std::function<void(MethodId, uint32_t, const InlineCache &)>
        &fn) const
{
    for (MethodId m = 0; m < ic_lines_.size(); ++m) {
        const std::vector<InlineCache> &lines = ic_lines_[m];
        for (uint32_t pc = 0; pc < lines.size(); ++pc) {
            if (lines[pc].fills > 0)
                fn(m, pc, lines[pc]);
        }
    }
}

} // namespace beehive::vm
