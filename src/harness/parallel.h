/**
 * @file
 * Parallel trial runner for the experiment binaries.
 *
 * An experiment like Figure 7 is a grid of completely independent
 * trials: each builds its own Testbed (Program, Simulation, Rng and
 * all), runs it, and returns a plain result struct. Nothing in the
 * simulator is shared across trials, so fanning the grid across OS
 * threads is safe and -- crucially -- cannot change a single byte of
 * output: each trial's determinism comes from its own seeded
 * simulation, and the caller consumes results by index, never by
 * completion order.
 */

#ifndef BEEHIVE_HARNESS_PARALLEL_H
#define BEEHIVE_HARNESS_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace beehive::harness {

/**
 * Resolve a --threads request: 0 = one per hardware thread (capped
 * by the job count), otherwise the requested count.
 */
inline unsigned
resolveTrialThreads(unsigned requested, std::size_t jobs)
{
    unsigned n = requested;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    if (jobs < n)
        n = static_cast<unsigned>(jobs);
    return n == 0 ? 1 : n;
}

/**
 * Run @p count independent trials of @p trial(index) and return the
 * results ordered by index.
 *
 * @p threads: 0 = one worker per hardware thread, 1 = run serially
 * on the calling thread (no threads spawned), N = exactly N workers.
 * Workers pull indices from a shared atomic counter; the first
 * exception any trial throws is rethrown on the caller once all
 * workers have drained.
 */
template <typename Trial>
auto
runTrials(std::size_t count, Trial &&trial, unsigned threads = 0)
    -> std::vector<decltype(trial(std::size_t{0}))>
{
    using Result = decltype(trial(std::size_t{0}));
    std::vector<Result> results(count);
    const unsigned nthreads = resolveTrialThreads(threads, count);

    if (nthreads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            results[i] = trial(i);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto worker = [&]() {
        while (true) {
            std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            try {
                results[i] = trial(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace beehive::harness

#endif // BEEHIVE_HARNESS_PARALLEL_H
