#include "harness/burst.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "snapshot/store.h"
#include "support/logging.h"
#include "telemetry/export.h"

namespace beehive::harness {

using sim::SimTime;

const char *
solutionName(Solution solution)
{
    switch (solution) {
      case Solution::Burstable: return "Burstable";
      case Solution::OnDemand: return "EC2";
      case Solution::Fargate: return "Fargate";
      case Solution::BeeHiveO: return "BeeHiveO";
      case Solution::BeeHiveL: return "BeeHiveL";
      case Solution::Combo: return "BeeHive+EC2";
    }
    return "?";
}

int
defaultClients(AppKind app)
{
    ClientCalibration cal;
    switch (app) {
      case AppKind::Thumbnail: return cal.thumbnail;
      case AppKind::Pybbs: return cal.pybbs;
      case AppKind::Blog: return cal.blog;
    }
    return 8;
}

namespace {

bool
isBeeHive(Solution solution)
{
    return solution == Solution::BeeHiveO ||
           solution == Solution::BeeHiveL ||
           solution == Solution::Combo;
}

cloud::ScalingKind
scalingKindOf(Solution solution)
{
    switch (solution) {
      case Solution::Burstable: return cloud::ScalingKind::Burstable;
      case Solution::OnDemand: return cloud::ScalingKind::OnDemand;
      case Solution::Fargate: return cloud::ScalingKind::Fargate;
      default: panic("not an instance-scaling solution");
    }
}

const cloud::InstanceType &
instanceTypeOf(Solution solution)
{
    switch (solution) {
      case Solution::Burstable: return cloud::t3XLarge();
      case Solution::OnDemand: return cloud::m4XLarge();
      case Solution::Fargate: return cloud::fargate4();
      default: panic("not an instance-scaling solution");
    }
}

} // namespace

BurstResult
runBurstExperiment(const BurstOptions &options)
{
    TestbedOptions tb_opts;
    tb_opts.app = options.app;
    tb_opts.seed = options.seed;
    tb_opts.vanilla = !isBeeHive(options.solution);
    tb_opts.faas = options.solution == Solution::BeeHiveL
                       ? FaasFlavor::Lambda
                       : FaasFlavor::OpenWhisk;
    tb_opts.framework = options.framework;
    tb_opts.beehive = options.beehive;
    if ((options.snapshot_faas || options.static_faas) &&
        isBeeHive(options.solution)) {
        // Short keep-alive: cached instances must actually leave
        // the cache before the burst, or warm boots would mask the
        // restore path under study.
        tb_opts.beehive.snapshot_enabled = options.snapshot_faas;
        tb_opts.beehive.static_manifests = options.static_faas;
        tb_opts.faas_keep_alive = SimTime::sec(8);
    }
    Testbed bed(tb_opts);

    if (isBeeHive(options.solution)) {
        bool selected = bed.runProfilingPhase();
        bh_assert(selected, "profiler failed to select the handler");
    }
    // The profiling phase consumed some simulated time; rebase the
    // experiment timeline from here.
    SimTime t0 = bed.sim().now();
    auto at = [&](SimTime offset) { return t0 + offset; };

    int base = options.base_clients > 0 ? options.base_clients
                                        : defaultClients(options.app);

    // --- Request routing: everything to the primary server until a
    // baseline scale-out instance is ready, then alternate.
    auto second_sink = std::make_shared<workload::RequestSink>();
    workload::RequestSink primary = bed.sink();
    workload::RequestSink route =
        [primary, second_sink](int64_t id,
                               std::function<void()> done) {
            if (*second_sink && (id & 1)) {
                (*second_sink)(id, std::move(done));
                return;
            }
            primary(id, std::move(done));
        };

    workload::Recorder recorder;
    recorder.setWarmupCutoff(at(SimTime::sec(5)));
    workload::ClosedLoopClients clients(bed.sim(), route, recorder);
    clients.start(base, at(SimTime()));
    clients.startWindow(base, at(options.burst_at),
                        at(options.duration));

    // --- The burst handler.
    std::unique_ptr<cloud::InstanceScaler> scaler;
    if (options.solution == Solution::Combo) {
        // Section 5.7: offload immediately, request an on-demand
        // instance, and stop offloading once it is ready.
        core::OffloadManager *mgr = bed.manager();
        scaler = std::make_unique<cloud::InstanceScaler>(
            bed.sim(), bed.network(), cloud::ScalingKind::OnDemand,
            cloud::m4XLarge(), "vpc");
        bed.sim().at(at(options.burst_at), [&, mgr] {
            mgr->setOffloadRatio(options.offload_ratio);
            scaler->requestInstance([&,
                                     mgr](cloud::Instance &machine) {
                core::BeeHiveServer &second =
                    bed.addBaselineServer(machine);
                *second_sink = bed.sinkTo(second);
                mgr->setOffloadRatio(0.0);
            });
        });
    } else if (isBeeHive(options.solution)) {
        core::OffloadManager *mgr = bed.manager();
        if (options.warm_faas) {
            // Pre-burst drill: briefly offload so instances are
            // created, warmed, and parked in the platform cache
            // (always ending well before the burst).
            SimTime drill_on = options.burst_at - SimTime::sec(24);
            SimTime drill_off = options.burst_at - SimTime::sec(8);
            bed.sim().at(at(drill_on), [&, mgr] {
                mgr->setOffloadRatio(options.offload_ratio);
            });
            bed.sim().at(at(drill_off),
                         [mgr] { mgr->setOffloadRatio(0.0); });
        } else if (options.snapshot_faas) {
            // Recording drill, earlier than the warm one: the cold
            // boots it pays populate the snapshot store, and the
            // short keep-alive expires its instances before the
            // burst -- so the burst boots fresh instances from the
            // recorded images.
            SimTime drill_on = options.burst_at - SimTime::sec(30);
            SimTime drill_off = options.burst_at - SimTime::sec(20);
            bed.sim().at(at(drill_on), [&, mgr] {
                mgr->setOffloadRatio(options.offload_ratio);
            });
            bed.sim().at(at(drill_off),
                         [mgr] { mgr->setOffloadRatio(0.0); });
        }
        bed.sim().at(at(options.burst_at), [&, mgr] {
            mgr->setOffloadRatio(options.offload_ratio);
        });
    } else {
        scaler = std::make_unique<cloud::InstanceScaler>(
            bed.sim(), bed.network(), scalingKindOf(options.solution),
            instanceTypeOf(options.solution), "vpc");
        bed.sim().at(at(options.burst_at), [&] {
            scaler->requestInstance([&](cloud::Instance &machine) {
                core::BeeHiveServer &second =
                    bed.addBaselineServer(machine);
                *second_sink = bed.sinkTo(second);
            });
        });
    }

    bed.sim().runUntil(at(options.duration));
    clients.stopAll();
    bed.sim().runUntil(at(options.duration) + SimTime::sec(2));

    // --- Analysis.
    BurstResult result;
    result.completed_requests = recorder.completed();
    std::size_t seconds =
        static_cast<std::size_t>(options.duration.toSeconds());
    std::size_t base_bucket =
        static_cast<std::size_t>(t0.toSeconds());
    for (std::size_t s = 0; s < seconds; ++s) {
        result.p99_per_second.push_back(
            recorder.series().bucketPercentile(base_bucket + s, 99));
        result.mean_per_second.push_back(
            recorder.series().bucketMean(base_bucket + s));
    }

    result.pre_burst_p99 = recorder.windowPercentile(
        at(options.burst_at - SimTime::sec(15)), at(options.burst_at),
        99);

    // Stabilization analysis: the first post-burst moment from
    // which the tail stays within a band around the run's own final
    // steady level (last fifth of the experiment). The steady level
    // itself is reported alongside: a solution that "stabilizes"
    // only because the experiment ended before its capacity arrived
    // shows an elevated stable_p99 relative to the others.
    result.stable_p99 = recorder.windowPercentile(
        at(options.duration - SimTime::sec(15)), at(options.duration),
        99);
    double burst_s = options.burst_at.toSeconds();
    double pre_band = std::max(result.pre_burst_p99 * 1.3,
                               result.pre_burst_p99 + 0.010);
    double threshold = std::max(result.stable_p99 * 1.25, pre_band);
    if (!std::isnan(result.stable_p99)) {
        for (std::size_t s = static_cast<std::size_t>(burst_s);
             s + 2 < result.p99_per_second.size(); ++s) {
            bool stable = true;
            for (std::size_t k = s; k < s + 3; ++k) {
                double v = result.p99_per_second[k];
                if (std::isnan(v) || v > threshold) {
                    stable = false;
                    break;
                }
            }
            if (stable) {
                result.stabilization_seconds =
                    static_cast<double>(s) - burst_s;
                break;
            }
        }
    }

    if (isBeeHive(options.solution)) {
        result.scaling_cost =
            bed.platform()->accruedCost(bed.sim().now());
        result.offload = bed.manager()->stats();
        result.cold_boots = bed.platform()->coldBoots();
        result.warm_boots = bed.platform()->warmBoots();
        result.restore_boots = bed.platform()->restoreBoots();
        if (const auto *snaps = bed.server().snapshots()) {
            result.snapshot_evictions = snaps->evictions();
            result.snapshot_re_records = snaps->reRecords();
            result.manifests_synthesized =
                snaps->manifestsSynthesized();
            result.snapshot_refined_dropped =
                snaps->refinedDropped();
        }
        result.traces = bed.manager()->traces();
        for (const auto &[root, trace] : result.traces) {
            if (!result.root_names.count(root))
                result.root_names[root] =
                    bed.program().qualifiedName(root);
        }
        if (scaler) // combo: FaaS + the on-demand instance
            result.scaling_cost +=
                scaler->accruedCost(bed.sim().now());
    } else {
        result.scaling_cost = scaler->accruedCost(bed.sim().now());
    }

    if (telemetry::Tracer *t = bed.tracer()) {
        bed.harvestMetrics();
        result.breakdown = telemetry::aggregateBreakdown(*t);
        result.span_violations = telemetry::validateSpans(*t);
        if (options.export_trace) {
            result.trace_json = telemetry::toChromeTraceJson(
                *t, options.trace_request);
        }
    }
    return result;
}

} // namespace beehive::harness
