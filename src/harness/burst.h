/**
 * @file
 * The burst-reduction experiment (paper Section 5.2, Figure 7;
 * costs feed Table 3 and Figure 9).
 *
 * Scenario: closed-loop clients at near-peak load; at t=60 s the
 * workload doubles and stays doubled. A perfect burst handler
 * reacts immediately: baselines request one more instance from
 * their scaling solution and forward half the workload once it is
 * ready; BeeHive raises the offloading ratio instead.
 */

#ifndef BEEHIVE_HARNESS_BURST_H
#define BEEHIVE_HARNESS_BURST_H

#include <map>
#include <string>
#include <vector>

#include "core/offload.h"
#include "harness/testbed.h"
#include "telemetry/critical_path.h"

namespace beehive::harness {

/** The scaling solutions compared in Figure 7. */
enum class Solution
{
    Burstable,
    OnDemand,
    Fargate,
    BeeHiveO,
    BeeHiveL,
    /**
     * Section 5.7's combination: BeeHive offloads the instant the
     * burst hits AND an on-demand instance is requested; when the
     * instance is ready, the offloading ratio drops to zero and the
     * new instance takes half the workload -- rapid provisioning
     * without the long-term Semi-FaaS overhead or cost.
     */
    Combo,
};

const char *solutionName(Solution solution);

/** Burst experiment parameters. */
struct BurstOptions
{
    AppKind app = AppKind::Pybbs;
    Solution solution = Solution::BeeHiveO;
    uint64_t seed = 1;

    sim::SimTime duration = sim::SimTime::sec(180);
    sim::SimTime burst_at = sim::SimTime::sec(60);

    /** Closed-loop clients before the burst (0 = per-app default);
     * the burst adds the same number again ("twice as heavy"). */
    int base_clients = 0;

    /** Warm-boot variant: function instances are cached and warmed
     * before the burst (Section 5.2's sub-second result). */
    bool warm_faas = false;

    /**
     * Snapshot variant: snapshots are enabled and an early drill
     * records the endpoint's working set; a short FaaS keep-alive
     * then expires every cached instance well before the burst, so
     * the burst's fresh instances boot through the *restore* path
     * (fault-free shadow phase) instead of the full cold path.
     */
    bool snapshot_faas = false;

    /**
     * Static-manifest variant: static_manifests is enabled, so
     * every root gets a synthesized prefetch manifest the moment it
     * is enabled for offload -- before any instance exists. Unlike
     * @ref snapshot_faas there is NO recording drill: the burst's
     * fresh instances take the restore path on their *first* boot,
     * off a working set that was never observed, only inferred.
     */
    bool static_faas = false;

    /** Offloading ratio applied at the burst. */
    double offload_ratio = 0.5;

    /** Telemetry: serialize the run's span tree as Chrome trace
     * JSON into BurstResult::trace_json (needs beehive.telemetry). */
    bool export_trace = false;
    /** Restrict the export to one request id (0 = all requests). */
    uint64_t trace_request = 0;

    apps::FrameworkOptions framework;
    core::BeeHiveConfig beehive;
};

/** Results of one burst run. */
struct BurstResult
{
    /** Per-second p99 (seconds); index = experiment second. */
    std::vector<double> p99_per_second;
    std::vector<double> mean_per_second;

    double pre_burst_p99 = 0.0;
    /** Stabilized p99 after scaling completed. */
    double stable_p99 = 0.0;
    /** Seconds from the burst until tail latency stabilized
     * (negative when it never did). */
    double stabilization_seconds = -1.0;

    /** Scaling-related cost of the whole run (Table 3). */
    double scaling_cost = 0.0;

    uint64_t completed_requests = 0;
    core::OffloadStats offload; //!< zero for baselines

    /** @name Boot-path accounting (BeeHive solutions only) */
    /// @{
    uint64_t cold_boots = 0;
    uint64_t warm_boots = 0;
    uint64_t restore_boots = 0;
    /** SnapshotStore churn (zero when no store was constructed). */
    uint64_t snapshot_evictions = 0;
    uint64_t snapshot_re_records = 0;
    uint64_t manifests_synthesized = 0;
    uint64_t snapshot_refined_dropped = 0;
    /** Completed invocation traces (boot breakdown reporting). */
    std::vector<std::pair<vm::MethodId, core::RequestTrace>> traces;
    /** Qualified names of the roots in @ref traces (the program
     * dies with the testbed; names outlive it). */
    std::map<vm::MethodId, std::string> root_names;
    /// @}

    /** @name Telemetry (populated when beehive.telemetry is on) */
    /// @{
    /** Per-phase critical-path aggregate across client requests. */
    telemetry::PhaseAggregate breakdown;
    /** Chrome trace JSON (empty unless options.export_trace). */
    std::string trace_json;
    /** Span well-formedness violations (expected empty). */
    std::vector<std::string> span_violations;
    /// @}
};

/** Run one Figure 7 configuration. */
BurstResult runBurstExperiment(const BurstOptions &options);

/** Default near-peak client count for an app. */
int defaultClients(AppKind app);

} // namespace beehive::harness

#endif // BEEHIVE_HARNESS_BURST_H
