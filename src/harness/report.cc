#include "harness/report.h"

#include <cmath>
#include <cstdio>

#include "support/strutil.h"

namespace beehive::harness {

std::string
fmt(double v, int decimals)
{
    if (std::isnan(v))
        return "-";
    return strprintf("%.*f", decimals, v);
}

void
printTable(const std::string &title,
           const std::vector<std::string> &headers,
           const std::vector<std::vector<std::string>> &rows)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        cell.c_str());
        }
        std::printf("\n");
    };
    print_row(headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows)
        print_row(row);
}

void
printSeriesHeader(const std::string &title, const std::string &x_label,
                  const std::string &y_label)
{
    std::printf("\n== %s ==\n# series: label, (%s %s) pairs\n",
                title.c_str(), x_label.c_str(), y_label.c_str());
}

void
printSeries(const std::string &label, const std::vector<double> &xs,
            const std::vector<double> &ys)
{
    std::printf("%s", label.c_str());
    for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
        if (std::isnan(ys[i]))
            continue;
        std::printf(", %g %g", xs[i], ys[i]);
    }
    std::printf("\n");
}

} // namespace beehive::harness
