#include "harness/report.h"

#include <cmath>
#include <cstdio>

#include "support/strutil.h"

namespace beehive::harness {

std::string
fmt(double v, int decimals)
{
    if (std::isnan(v))
        return "-";
    return strprintf("%.*f", decimals, v);
}

void
printTable(const std::string &title,
           const std::vector<std::string> &headers,
           const std::vector<std::vector<std::string>> &rows)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        cell.c_str());
        }
        std::printf("\n");
    };
    print_row(headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows)
        print_row(row);
}

void
printSeriesHeader(const std::string &title, const std::string &x_label,
                  const std::string &y_label)
{
    std::printf("\n== %s ==\n# series: label, (%s %s) pairs\n",
                title.c_str(), x_label.c_str(), y_label.c_str());
}

void
printSeries(const std::string &label, const std::vector<double> &xs,
            const std::vector<double> &ys)
{
    std::printf("%s", label.c_str());
    for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
        if (std::isnan(ys[i]))
            continue;
        std::printf(", %g %g", xs[i], ys[i]);
    }
    std::printf("\n");
}

std::vector<BootBreakdownRow>
collectBootBreakdown(
    const std::vector<std::pair<vm::MethodId, core::RequestTrace>>
        &traces)
{
    std::vector<BootBreakdownRow> rows;
    auto rowFor = [&rows](vm::MethodId root) -> BootBreakdownRow & {
        for (BootBreakdownRow &r : rows) {
            if (r.root == root)
                return r;
        }
        rows.emplace_back();
        rows.back().root = root;
        return rows.back();
    };
    for (const auto &[root, trace] : traces) {
        BootBreakdownRow &row = rowFor(root);
        auto kind = static_cast<std::size_t>(trace.boot);
        if (kind >= 4)
            continue;
        ++row.boots[kind];
        row.fetches[kind] += trace.remoteFetches();
        row.prefetched_klasses += trace.prefetched_klasses;
        row.prefetched_objects += trace.prefetched_objects;
        row.stale_prefetches += trace.stale_prefetches;
    }
    return rows;
}

void
printBootBreakdown(
    const std::string &title,
    const std::function<std::string(vm::MethodId)> &name,
    const std::vector<BootBreakdownRow> &rows)
{
    auto mean = [](uint64_t sum, uint64_t n) {
        return n ? static_cast<double>(sum) / static_cast<double>(n)
                 : std::nan("");
    };
    std::vector<std::vector<std::string>> cells;
    for (const BootBreakdownRow &r : rows) {
        auto cold = static_cast<std::size_t>(cloud::BootKind::Cold);
        auto warm = static_cast<std::size_t>(cloud::BootKind::Warm);
        auto restore =
            static_cast<std::size_t>(cloud::BootKind::Restore);
        cells.push_back({
            name(r.root),
            strprintf("%llu", static_cast<unsigned long long>(
                                  r.boots[cold])),
            strprintf("%llu", static_cast<unsigned long long>(
                                  r.boots[warm])),
            strprintf("%llu", static_cast<unsigned long long>(
                                  r.boots[restore])),
            fmt(mean(r.fetches[cold], r.boots[cold])),
            fmt(mean(r.fetches[warm], r.boots[warm])),
            fmt(mean(r.fetches[restore], r.boots[restore])),
            strprintf("%llu", static_cast<unsigned long long>(
                                  r.prefetched_klasses)),
            strprintf("%llu", static_cast<unsigned long long>(
                                  r.prefetched_objects)),
            strprintf("%llu", static_cast<unsigned long long>(
                                  r.stale_prefetches)),
        });
    }
    printTable(title,
               {"endpoint", "cold", "warm", "restore", "fetch/cold",
                "fetch/warm", "fetch/restore", "pre-klass", "pre-obj",
                "stale"},
               cells);
}

void
printSnapshotChurn(const std::string &title,
                   const SnapshotChurn &churn)
{
    auto u = [](uint64_t v) {
        return strprintf("%llu", static_cast<unsigned long long>(v));
    };
    printTable(title,
               {"evictions", "re_records", "manifests", "refined",
                "stale"},
               {{u(churn.evictions), u(churn.re_records),
                 u(churn.manifests_synthesized),
                 u(churn.refined_dropped),
                 u(churn.stale_prefetches)}});
}

void
printPhaseBreakdown(const std::string &title,
                    const telemetry::PhaseAggregate &agg)
{
    std::vector<std::vector<std::string>> rows;
    for (std::size_t p = 0; p < telemetry::kPhaseCount; ++p) {
        const sim::SampleSet &s = agg.phase_ms[p];
        if (s.empty() || s.sum() == 0.0)
            continue;
        rows.push_back(
            {telemetry::phaseName(static_cast<telemetry::Phase>(p)),
             fmt(s.sum(), 1), fmt(s.mean(), 3)});
    }
    rows.push_back({"total", fmt(agg.total_ms.sum(), 1),
                    fmt(agg.total_ms.mean(), 3)});
    printTable(title + strprintf(" (%llu requests)",
                                 static_cast<unsigned long long>(
                                     agg.requests)),
               {"phase", "total_ms", "mean_ms/request"}, rows);
}

} // namespace beehive::harness
