/**
 * @file
 * The throughput experiment (paper Section 5.3, Figure 8; also the
 * fixed-throughput tail measurements of Table 4 and Figure 10).
 *
 * Open-loop Poisson arrivals at a fixed offered rate; latency is
 * recorded after a warm-up window. Configurations: the vanilla JVM
 * on the always-on server, BeeHive-Single (the instrumented server
 * with offloading disabled -- isolates the write-barrier cost),
 * and BeeHive offloading to OpenWhisk or Lambda.
 */

#ifndef BEEHIVE_HARNESS_THROUGHPUT_H
#define BEEHIVE_HARNESS_THROUGHPUT_H

#include <string>
#include <vector>

#include "harness/testbed.h"
#include "telemetry/critical_path.h"

namespace beehive::harness {

/** Figure 8's configurations. */
enum class ThroughputConfig
{
    Vanilla,
    BeeHiveSingle,
    BeeHiveO,
    BeeHiveL,
};

const char *throughputConfigName(ThroughputConfig config);

/** One point of the latency-throughput curve. */
struct ThroughputPoint
{
    double offered_rps = 0.0;
    double achieved_rps = 0.0;
    double mean_latency = 0.0; //!< seconds
    double p99_latency = 0.0;  //!< seconds

    /** @name Telemetry (populated when beehive.telemetry is on) */
    /// @{
    telemetry::PhaseAggregate breakdown;
    /** Chrome trace JSON (empty unless options.export_trace). */
    std::string trace_json;
    /// @}
};

/** Sweep parameters. */
struct ThroughputOptions
{
    AppKind app = AppKind::Pybbs;
    ThroughputConfig config = ThroughputConfig::Vanilla;
    uint64_t seed = 1;
    sim::SimTime duration = sim::SimTime::sec(30);
    sim::SimTime warmup = sim::SimTime::sec(8);
    /** Offload ratio; negative = derive from offered load vs the
     * calibrated server saturation. */
    double offload_ratio = -1.0;
    /** Concurrent-offload cap (function instances in flight). */
    std::size_t max_offloads = 160;

    /** Telemetry: serialize the span tree of each point's run as
     * Chrome trace JSON (needs beehive.telemetry). */
    bool export_trace = false;
    /** Restrict the export to one request id (0 = all requests). */
    uint64_t trace_request = 0;

    apps::FrameworkOptions framework;
    core::BeeHiveConfig beehive;
};

/** Run one offered-rate point. */
ThroughputPoint runThroughputPoint(const ThroughputOptions &options,
                                   double offered_rps);

/** Run a whole sweep. */
std::vector<ThroughputPoint>
runThroughputSweep(const ThroughputOptions &options,
                   const std::vector<double> &rates);

/** Calibrated vanilla saturation rate for an app. */
double saturationRps(AppKind app);

} // namespace beehive::harness

#endif // BEEHIVE_HARNESS_THROUGHPUT_H
