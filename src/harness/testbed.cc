#include "harness/testbed.h"

#include "support/logging.h"

namespace beehive::harness {

const char *
appName(AppKind kind)
{
    switch (kind) {
      case AppKind::Thumbnail: return "thumbnail";
      case AppKind::Pybbs: return "pybbs";
      case AppKind::Blog: return "blog";
    }
    return "?";
}

Testbed::Testbed(TestbedOptions options) : options_(options)
{
    NetCalibration net_cal;
    VmCalibration vm_cal;

    sim_ = std::make_unique<sim::Simulation>(options_.seed);
    if (options_.beehive.telemetry) {
        tracer_ = std::make_unique<telemetry::Tracer>(
            *sim_, options_.beehive.telemetry_span_capacity);
        sim_->setTracer(tracer_.get());
    }
    net_ = std::make_unique<net::Network>(options_.seed ^ 0x9e3779b9);
    net_->setZoneLatency("vpc", "vpc", net_cal.vpc_vpc);
    net_->setZoneLatency("vpc", "db", net_cal.vpc_db);
    net_->setZoneLatency("lambda", "vpc", net_cal.lambda_vpc);
    net_->setZoneLatency("lambda", "db", net_cal.lambda_db);
    net_->setZoneLatency("db", "db", sim::SimTime::usec(20));
    if (options_.cross_az) {
        // OpenWhisk workers in a different availability zone.
        net_->setZoneLatency("faas-az2", "vpc",
                             net_cal.vpc_vpc + net_cal.cross_az_extra);
        net_->setZoneLatency("faas-az2", "db",
                             net_cal.vpc_db + net_cal.cross_az_extra);
    }

    // Program: framework first, then the app (all klasses must
    // exist before any VM context loads the program).
    program_ = std::make_unique<vm::Program>();
    natives_ = std::make_unique<vm::NativeRegistry>();
    framework_ = std::make_unique<apps::Framework>(
        *program_, *natives_, options_.framework);
    switch (options_.app) {
      case AppKind::Thumbnail:
        app_ = std::make_unique<apps::ThumbnailApp>(*framework_);
        break;
      case AppKind::Pybbs:
        app_ = std::make_unique<apps::PybbsApp>(*framework_);
        break;
      case AppKind::Blog:
        app_ = std::make_unique<apps::BlogApp>(*framework_);
        break;
    }

    // Database machine + proxy (Section 5.1: m4.10xlarge so the DB
    // never bottlenecks any scaling solution).
    store_ = std::make_unique<db::RecordStore>();
    app_->seedDatabase(*store_);
    db_machine_ = std::make_unique<cloud::Instance>(
        *sim_, *net_, cloud::m410XLarge(), "db-1", "db");
    proxy_ = std::make_unique<proxy::ConnectionProxy>(*store_);
    if (tracer_)
        proxy_->setTelemetry(tracer_.get());

    // The always-on server.
    core::BeeHiveConfig cfg = options_.beehive;
    framework_->applyVmDefaults(cfg);
    cfg.server_vm.instr_cost_ns = options_.vanilla
                                      ? vm_cal.vanilla_instr_ns
                                      : vm_cal.beehive_instr_ns;
    server_machine_ = std::make_unique<cloud::Instance>(
        *sim_, *net_, cloud::m4XLarge(), "server-1", "vpc");
    server_ = std::make_unique<core::BeeHiveServer>(
        *sim_, *net_, *program_, *natives_, *proxy_,
        db_machine_->endpoint(), *server_machine_, cfg);
    framework_->installOnServer(*server_, *proxy_);
    app_->installOnServer(*server_);
    server_->profiler().addCandidateAnnotation("RequestMapping");

    if (!options_.vanilla) {
        cloud::FaasProfile profile;
        if (options_.faas == FaasFlavor::OpenWhisk) {
            profile = cloud::openWhiskProfile();
            if (options_.cross_az)
                profile.zone = "faas-az2";
        } else {
            profile = cloud::lambdaProfile(
                app_->lambdaType().memory_gb);
            profile.instance_type = app_->lambdaType();
        }
        if (options_.faas_keep_alive.ns() > 0)
            profile.keep_alive = options_.faas_keep_alive;
        platform_ = std::make_unique<cloud::FaasPlatform>(
            *sim_, *net_, profile);
        manager_ = std::make_unique<core::OffloadManager>(
            *server_, *platform_);
    }

    // Fault-injection plane (off by default: no engine, no hooks,
    // byte-identical behaviour). Each subsystem holds a pointer to
    // the one engine and consults it at its injection sites.
    if (options_.chaos.enabled) {
        chaos_ = std::make_unique<chaos::ChaosEngine>(
            *sim_, options_.chaos, options_.seed);
        net_->setChaos(chaos_.get());
        store_->setFaultHook([this](const db::Request &) {
            return chaos_->resetDbConnection();
        });
        if (platform_)
            platform_->setChaos(chaos_.get());
        if (server_->snapshots())
            server_->snapshots()->setChaos(chaos_.get());
        if (manager_)
            manager_->setChaos(chaos_.get());
        chaos_->arm();
    }
}

Testbed::~Testbed() = default;

void
Testbed::harvestMetrics()
{
    if (!tracer_)
        return;
    telemetry::MetricsRegistry &m = tracer_->metrics();
    const sim::EventQueue &q = sim_->queue();
    m.set("sim.events_scheduled", q.scheduled());
    m.set("sim.events_dispatched", q.dispatched());
    m.set("sim.events_cancelled", q.cancelled());
    m.set("proxy.stat_requests_routed",
          proxy_->stats().requests_routed);
    m.set("proxy.stat_offload_requests",
          proxy_->stats().offload_requests);
    m.set("server.stat_local_requests",
          server_->stats().local_requests);
    m.set("server.stat_fallbacks_served",
          server_->stats().fallbacks_served);
    m.set("gc.server_cycles",
          server_->collector().totals().collections);
    if (platform_) {
        m.set("faas.cold_boots", platform_->coldBoots());
        m.set("faas.warm_boots", platform_->warmBoots());
        m.set("faas.restore_boots", platform_->restoreBoots());
        m.set("faas.instances", platform_->totalInstances());
        m.set("faas.cache_expired", platform_->expired());
    }
    if (manager_) {
        const core::OffloadStats &s = manager_->stats();
        m.set("offload.stat_local", s.local);
        m.set("offload.stat_offloaded", s.offloaded);
        m.set("offload.stat_shadows", s.shadows);
        m.set("offload.stat_restores", s.restores);
        m.set("offload.stat_recoveries", s.recoveries);
        if (chaos_) {
            m.set("offload.stat_retries", s.retries);
            m.set("offload.stat_deadline_expirations",
                  s.deadline_expirations);
            m.set("offload.stat_boot_failures", s.boot_failures);
            m.set("offload.stat_local_fallbacks", s.local_fallbacks);
            m.set("offload.stat_shadows_abandoned",
                  s.shadows_abandoned);
            m.set("offload.stat_breaker_ejections",
                  s.breaker_ejections);
            m.set("offload.stat_degradations", s.degradations);
            m.set("offload.stat_corrupt_restores", s.corrupt_restores);
        }
    }
    if (chaos_) {
        const chaos::ChaosStats &c = chaos_->stats();
        m.set("chaos.net_drops", c.net_drops);
        m.set("chaos.net_spikes", c.net_spikes);
        m.set("chaos.partition_drops", c.partition_drops);
        m.set("chaos.boot_crashes", c.boot_crashes);
        m.set("chaos.restore_crashes", c.restore_crashes);
        m.set("chaos.invoke_crashes", c.invoke_crashes);
        m.set("chaos.throttles", c.throttles);
        m.set("chaos.db_resets", c.db_resets);
        m.set("chaos.image_corruptions", c.image_corruptions);
        m.set("chaos.total", c.total());
    }
}

workload::RequestSink
Testbed::sink()
{
    return sinkTo(*server_);
}

workload::RequestSink
Testbed::sinkTo(core::BeeHiveServer &server)
{
    vm::MethodId entry = app_->entry();
    return [&server, entry](int64_t id, std::function<void()> done) {
        server.handleLocal(entry, {vm::Value::ofInt(id)},
                           [done = std::move(done)](vm::Value) {
                               done();
                           });
    };
}

bool
Testbed::runProfilingPhase()
{
    server_->setProfiling(true);
    workload::Recorder recorder;
    workload::ClosedLoopClients clients(*sim_, sink(), recorder);
    clients.start(2, sim_->now());
    // Drive the simulation until enough requests completed.
    sim::SimTime guard = sim_->now() + sim::SimTime::sec(600);
    while (recorder.completed() <
               static_cast<uint64_t>(options_.profiling_requests) &&
           sim_->now() < guard) {
        sim_->runUntil(sim_->now() + sim::SimTime::msec(250));
    }
    clients.stopAll();
    sim_->runUntil(sim_->now() + sim::SimTime::sec(2));
    // Under fault injection a profiling request can stall well past
    // the nominal drain (blackholed messages, retry chains); its
    // completion callback would then fire into this function's dead
    // locals. Keep draining until every client loop has unwound.
    // Fault-free runs are already quiescent here, so this adds no
    // simulated time and the phase stays byte-identical.
    sim::SimTime drain_guard = sim_->now() + sim::SimTime::sec(600);
    while (clients.active() > 0 && sim_->now() < drain_guard)
        sim_->runUntil(sim_->now() + sim::SimTime::msec(250));
    bh_assert(clients.active() == 0,
              "profiling clients still active after drain");

    // Root selection: accumulated time large, average time not
    // short (Section 4.3's two heuristics).
    auto roots = server_->profiler().selectRoots(
        /*min_total_ns=*/5e6, /*min_avg_ns=*/1e6);
    bool selected = false;
    for (vm::MethodId root : roots) {
        if (root == app_->handler())
            selected = true;
    }
    if (selected && manager_) {
        manager_->enableRoot(app_->handler(),
                             {vm::Value::ofInt(0)});
    }
    return selected;
}

core::BeeHiveServer &
Testbed::addBaselineServer(cloud::Instance &machine)
{
    core::BeeHiveConfig cfg = options_.beehive;
    framework_->applyVmDefaults(cfg);
    VmCalibration vm_cal;
    cfg.server_vm.instr_cost_ns = vm_cal.vanilla_instr_ns;
    auto server = std::make_unique<core::BeeHiveServer>(
        *sim_, *net_, *program_, *natives_, *proxy_,
        db_machine_->endpoint(), machine, cfg);
    framework_->installOnServer(*server, *proxy_);
    app_->installOnServer(*server);
    extra_servers_.push_back(std::move(server));
    return *extra_servers_.back();
}

} // namespace beehive::harness
