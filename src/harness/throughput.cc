#include "harness/throughput.h"

#include <algorithm>

#include "support/logging.h"
#include "telemetry/export.h"

namespace beehive::harness {

using sim::SimTime;

const char *
throughputConfigName(ThroughputConfig config)
{
    switch (config) {
      case ThroughputConfig::Vanilla: return "Vanilla";
      case ThroughputConfig::BeeHiveSingle: return "BeeHive-Single";
      case ThroughputConfig::BeeHiveO: return "BeeHiveO";
      case ThroughputConfig::BeeHiveL: return "BeeHiveL";
    }
    return "?";
}

double
saturationRps(AppKind app)
{
    SaturationCalibration cal;
    switch (app) {
      case AppKind::Thumbnail: return cal.thumbnail;
      case AppKind::Pybbs: return cal.pybbs;
      case AppKind::Blog: return cal.blog;
    }
    return 100.0;
}

ThroughputPoint
runThroughputPoint(const ThroughputOptions &options,
                   double offered_rps)
{
    bool offloading = options.config == ThroughputConfig::BeeHiveO ||
                      options.config == ThroughputConfig::BeeHiveL;

    TestbedOptions tb_opts;
    tb_opts.app = options.app;
    tb_opts.seed = options.seed;
    tb_opts.vanilla = options.config == ThroughputConfig::Vanilla;
    tb_opts.faas = options.config == ThroughputConfig::BeeHiveL
                       ? FaasFlavor::Lambda
                       : FaasFlavor::OpenWhisk;
    tb_opts.framework = options.framework;
    tb_opts.beehive = options.beehive;
    Testbed bed(tb_opts);

    if (offloading) {
        bool selected = bed.runProfilingPhase();
        bh_assert(selected, "profiler failed to select the handler");
    }
    SimTime t0 = bed.sim().now();

    if (offloading) {
        bed.manager()->setMaxConcurrentOffloads(options.max_offloads);
        double ratio = options.offload_ratio;
        if (ratio < 0.0) {
            // Keep the server comfortably below saturation and push
            // the excess to FaaS.
            double sat = 0.85 * saturationRps(options.app);
            ratio = offered_rps <= sat
                        ? 0.0
                        : std::min(0.97, 1.0 - sat / offered_rps);
        }
        bed.manager()->setOffloadRatio(ratio);
    }

    workload::Recorder recorder;
    recorder.setWarmupCutoff(t0 + options.warmup);
    workload::OpenLoopArrivals arrivals(bed.sim(), bed.sink(),
                                        recorder);
    arrivals.run(offered_rps, t0, t0 + options.duration);
    bed.sim().runUntil(t0 + options.duration + SimTime::sec(3));

    ThroughputPoint point;
    point.offered_rps = offered_rps;
    point.achieved_rps = recorder.throughput(
        t0 + options.warmup, t0 + options.duration);
    point.mean_latency = recorder.latencies().mean();
    point.p99_latency = recorder.latencies().percentile(99);

    if (telemetry::Tracer *t = bed.tracer()) {
        bed.harvestMetrics();
        point.breakdown = telemetry::aggregateBreakdown(*t);
        if (options.export_trace) {
            point.trace_json = telemetry::toChromeTraceJson(
                *t, options.trace_request);
        }
    }
    return point;
}

std::vector<ThroughputPoint>
runThroughputSweep(const ThroughputOptions &options,
                   const std::vector<double> &rates)
{
    std::vector<ThroughputPoint> points;
    for (double rps : rates)
        points.push_back(runThroughputPoint(options, rps));
    return points;
}

} // namespace beehive::harness
