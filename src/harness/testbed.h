/**
 * @file
 * Testbed: one fully assembled experiment environment.
 *
 * Mirrors the paper's Section 5.1 setup: an m4.xlarge server in the
 * VPC, the database (plus connection proxy) on an m4.10xlarge, and
 * a FaaS platform -- OpenWhisk (m4.large workers in the VPC) or
 * AWS Lambda (1-2 GB functions in a higher-latency zone). One of
 * the three applications is installed; a profiling phase warms the
 * candidate profiler so closures can be built.
 */

#ifndef BEEHIVE_HARNESS_TESTBED_H
#define BEEHIVE_HARNESS_TESTBED_H

#include <memory>

#include "apps/app.h"
#include "apps/blog.h"
#include "apps/framework.h"
#include "apps/pybbs.h"
#include "apps/thumbnail.h"
#include "chaos/chaos.h"
#include "cloud/faas.h"
#include "cloud/scaling.h"
#include "core/offload.h"
#include "core/server.h"
#include "harness/calibration.h"
#include "telemetry/telemetry.h"
#include "workload/clients.h"

namespace beehive::harness {

/** The evaluated applications. */
enum class AppKind { Thumbnail, Pybbs, Blog };

const char *appName(AppKind kind);

/** Which FaaS deployment BeeHive offloads to. */
enum class FaasFlavor { OpenWhisk, Lambda };

/** Testbed assembly options. */
struct TestbedOptions
{
    AppKind app = AppKind::Pybbs;
    FaasFlavor faas = FaasFlavor::OpenWhisk;
    uint64_t seed = 1;

    /**
     * Vanilla mode: an unmodified JVM -- no write barriers, no
     * offload manager (the Figure 8 baseline).
     */
    bool vanilla = false;

    apps::FrameworkOptions framework;
    core::BeeHiveConfig beehive;

    /** Requests executed during the profiling phase. */
    int profiling_requests = 25;

    /** Place OpenWhisk workers in another availability zone
     * (Section 5.2's 23.2% overhead experiment). */
    bool cross_az = false;

    /** Override the FaaS profile's keep-alive when non-zero
     * (snapshot experiments use short windows so instance caches
     * actually expire within the simulated horizon). */
    sim::SimTime faas_keep_alive;

    /**
     * Fault-injection plan. Disabled by default: no engine is
     * constructed, no hooks are attached, and the testbed behaves
     * byte-identically to one built before the chaos plane existed.
     */
    chaos::FaultPlan chaos;
};

/** One assembled environment. */
class Testbed
{
  public:
    explicit Testbed(TestbedOptions options);
    ~Testbed();

    /** @name Access */
    /// @{
    sim::Simulation &sim() { return *sim_; }
    net::Network &network() { return *net_; }
    vm::Program &program() { return *program_; }
    apps::Framework &framework() { return *framework_; }
    apps::WebApp &app() { return *app_; }
    db::RecordStore &store() { return *store_; }
    proxy::ConnectionProxy &proxy() { return *proxy_; }
    core::BeeHiveServer &server() { return *server_; }
    /** Null in vanilla mode. */
    core::OffloadManager *manager() { return manager_.get(); }
    /** Null in vanilla mode. */
    cloud::FaasPlatform *platform() { return platform_.get(); }
    /** Fault-injection engine; null unless options.chaos.enabled. */
    chaos::ChaosEngine *chaosEngine() { return chaos_.get(); }
    cloud::Instance &serverMachine() { return *server_machine_; }
    const TestbedOptions &options() const { return options_; }

    /** Span recorder; null unless config.telemetry. */
    telemetry::Tracer *tracer() { return tracer_.get(); }

    /**
     * Fold harvested counters (event queue, FaaS boots, proxy
     * routing, offload and server stats) into the tracer's metrics
     * registry. No-op when telemetry is off.
     */
    void harvestMetrics();
    /// @}

    /** Request sink into the primary server (framework entry). */
    workload::RequestSink sink();

    /** Request sink into an additional (baseline scale-out) server. */
    workload::RequestSink sinkTo(core::BeeHiveServer &server);

    /**
     * Run the profiling phase: a couple of closed-loop clients
     * execute @c profiling_requests requests so the candidate
     * profiler accumulates the handler's profile; then the root is
     * selected (Section 4.3 heuristics) and enabled for offload.
     *
     * @retval true when the app handler was selected as a root.
     */
    bool runProfilingPhase();

    /**
     * Create a second vanilla server on @p machine (the baseline
     * scale-out path: the new on-demand/burstable/Fargate instance
     * runs the whole monolith). App state and connections are
     * installed; the caller routes requests to it.
     */
    core::BeeHiveServer &addBaselineServer(cloud::Instance &machine);

  private:
    TestbedOptions options_;
    std::unique_ptr<sim::Simulation> sim_;
    std::unique_ptr<telemetry::Tracer> tracer_;
    std::unique_ptr<net::Network> net_;
    std::unique_ptr<vm::Program> program_;
    std::unique_ptr<vm::NativeRegistry> natives_;
    std::unique_ptr<apps::Framework> framework_;
    std::unique_ptr<apps::WebApp> app_;
    std::unique_ptr<db::RecordStore> store_;
    std::unique_ptr<proxy::ConnectionProxy> proxy_;
    std::unique_ptr<cloud::Instance> db_machine_;
    std::unique_ptr<cloud::Instance> server_machine_;
    std::unique_ptr<core::BeeHiveServer> server_;
    std::unique_ptr<cloud::FaasPlatform> platform_;
    std::unique_ptr<core::OffloadManager> manager_;
    std::unique_ptr<chaos::ChaosEngine> chaos_;
    std::vector<std::unique_ptr<core::BeeHiveServer>> extra_servers_;
};

} // namespace beehive::harness

#endif // BEEHIVE_HARNESS_TESTBED_H
