/**
 * @file
 * Calibration constants, each annotated with its paper source.
 *
 * Absolute numbers are inherited from the paper's published
 * measurements so the regenerated tables land in the right regime;
 * the *relationships* between configurations (who wins, by how
 * much, where crossovers sit) are produced by the simulation.
 */

#ifndef BEEHIVE_HARNESS_CALIBRATION_H
#define BEEHIVE_HARNESS_CALIBRATION_H

#include "sim/sim_time.h"

namespace beehive::harness {

/** Network: one-way latencies by zone pair. */
struct NetCalibration
{
    /** EC2<->EC2 inside one VPC (typical us-east-1 figures). */
    sim::SimTime vpc_vpc = sim::SimTime::usec(190);
    /** Server<->database (same placement group). */
    sim::SimTime vpc_db = sim::SimTime::usec(230);
    /**
     * Lambda<->EC2 even in the same VPC: "the performance
     * difference mainly comes from larger network latency between
     * Lambda function instances and EC2 servers" (Section 5.2).
     */
    sim::SimTime lambda_vpc = sim::SimTime::usec(320);
    sim::SimTime lambda_db = sim::SimTime::usec(360);
    /** Cross-availability-zone penalty (Section 5.2's 23.2% case). */
    sim::SimTime cross_az_extra = sim::SimTime::usec(450);
};

/**
 * Server VM costs. The BeeHive server instruments writes to
 * maintain dirty-object lists; the paper prices this at a 7.14%
 * peak-throughput drop for pybbs (Section 5.3). Vanilla servers
 * run without the barrier.
 */
struct VmCalibration
{
    double vanilla_instr_ns = 2.0;
    double beehive_instr_ns = 2.0 * 1.0714;
};

/** Near-peak closed-loop client counts per app (Figure 7 setup). */
struct ClientCalibration
{
    int thumbnail = 4;
    int pybbs = 8;
    int blog = 4;
};

/** Approximate vanilla saturation throughput (rps) per app, used
 * to pick offload ratios in open-loop sweeps (Figure 8). */
struct SaturationCalibration
{
    double thumbnail = 85.0;
    double pybbs = 80.0;
    double blog = 100.0;
};

} // namespace beehive::harness

#endif // BEEHIVE_HARNESS_CALIBRATION_H
