/**
 * @file
 * Output helpers: the benches print the paper's tables and figure
 * series through these so everything lines up consistently.
 */

#ifndef BEEHIVE_HARNESS_REPORT_H
#define BEEHIVE_HARNESS_REPORT_H

#include <string>
#include <vector>

namespace beehive::harness {

/** Print a titled, column-aligned table to stdout. */
void printTable(const std::string &title,
                const std::vector<std::string> &headers,
                const std::vector<std::vector<std::string>> &rows);

/**
 * Print a figure series as "label, t0 v0, t1 v1, ..." CSV lines
 * (one line per label) with a titled header.
 */
void printSeriesHeader(const std::string &title,
                       const std::string &x_label,
                       const std::string &y_label);
void printSeries(const std::string &label,
                 const std::vector<double> &xs,
                 const std::vector<double> &ys);

/** Shorthand number formatting. */
std::string fmt(double v, int decimals = 2);

} // namespace beehive::harness

#endif // BEEHIVE_HARNESS_REPORT_H
