/**
 * @file
 * Output helpers: the benches print the paper's tables and figure
 * series through these so everything lines up consistently.
 */

#ifndef BEEHIVE_HARNESS_REPORT_H
#define BEEHIVE_HARNESS_REPORT_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/trace.h"
#include "telemetry/critical_path.h"
#include "vm/program.h"

namespace beehive::harness {

/** Print a titled, column-aligned table to stdout. */
void printTable(const std::string &title,
                const std::vector<std::string> &headers,
                const std::vector<std::vector<std::string>> &rows);

/**
 * Print a figure series as "label, t0 v0, t1 v1, ..." CSV lines
 * (one line per label) with a titled header.
 */
void printSeriesHeader(const std::string &title,
                       const std::string &x_label,
                       const std::string &y_label);
void printSeries(const std::string &label,
                 const std::vector<double> &xs,
                 const std::vector<double> &ys);

/** Shorthand number formatting. */
std::string fmt(double v, int decimals = 2);

/**
 * Per-endpoint boot-path breakdown aggregated from invocation
 * traces: how many invocations ran on cold-, warm- and
 * restore-booted instances, how many remote fetches (the fault
 * storm) each boot kind paid, and what a restore boot pre-installed.
 */
struct BootBreakdownRow
{
    vm::MethodId root = vm::kNoMethod;
    /** Invocations indexed by cloud::BootKind. */
    uint64_t boots[4] = {0, 0, 0, 0};
    /** Remote fetches (code+data) indexed by cloud::BootKind. */
    uint64_t fetches[4] = {0, 0, 0, 0};
    uint64_t prefetched_klasses = 0;
    uint64_t prefetched_objects = 0;
    uint64_t stale_prefetches = 0;
};

/** Aggregate completed traces into per-root boot breakdown rows. */
std::vector<BootBreakdownRow> collectBootBreakdown(
    const std::vector<std::pair<vm::MethodId, core::RequestTrace>>
        &traces);

/**
 * Print the boot breakdown (mean fetches per boot kind).
 *
 * @param name Resolves a root method id to a printable name (pass
 *        a wrapper over Program::qualifiedName while the program is
 *        alive, or a lookup over recorded names afterwards).
 */
void printBootBreakdown(
    const std::string &title,
    const std::function<std::string(vm::MethodId)> &name,
    const std::vector<BootBreakdownRow> &rows);

/**
 * Store-level churn of one run's SnapshotStore: how often the LRU
 * budget evicted an image, how many endpoints had to re-record after
 * eviction, how many manifests were synthesized statically and how
 * many synthetic entries recorded boots refined away. Printed next
 * to the boot breakdown so eviction churn can be read against the
 * stale-prefetch column it tends to precede.
 */
struct SnapshotChurn
{
    uint64_t evictions = 0;
    uint64_t re_records = 0;
    uint64_t manifests_synthesized = 0;
    uint64_t refined_dropped = 0;
    uint64_t stale_prefetches = 0; //!< summed over the traces
};

void printSnapshotChurn(const std::string &title,
                        const SnapshotChurn &churn);

/**
 * Print a critical-path phase aggregate: one row per phase with the
 * total and per-request mean milliseconds of self-time attributed
 * to it, plus a closing total row. The phase rows sum to the total
 * (the analyzer attributes every nanosecond of a request's root
 * span to exactly one phase), so the table reads as "where did the
 * end-to-end latency go".
 */
void printPhaseBreakdown(const std::string &title,
                         const telemetry::PhaseAggregate &agg);

} // namespace beehive::harness

#endif // BEEHIVE_HARNESS_REPORT_H
