/**
 * @file
 * The external database service.
 *
 * The paper's web applications keep their persistent state in MySQL
 * behind connection pools; a pybbs comment request performs more
 * than 80 rounds of communication with the database (Section 3.3).
 * This record store reproduces that interaction shape: stateful
 * connections carry point reads, scans, and writes against named
 * tables, each with a modelled service time and a result size that
 * feeds the network transfer model.
 */

#ifndef BEEHIVE_DB_RECORD_STORE_H
#define BEEHIVE_DB_RECORD_STORE_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/sim_time.h"

namespace beehive::db {

/** One stored row: a primary key plus string fields. */
struct Row
{
    int64_t id = 0;
    std::map<std::string, std::string> fields;

    /** Approximate wire size of this row in bytes. */
    uint64_t wireSize() const;
};

/** Database operation kinds. */
enum class OpKind { Get, Put, Scan, Count, Delete };

/** A request as it appears on a database connection. */
struct Request
{
    Request() = default;

    /** Convenience constructor for point operations. */
    Request(OpKind kind, std::string table, int64_t key = 0)
        : kind(kind), table(std::move(table)), key(key)
    {}

    OpKind kind = OpKind::Get;
    std::string table;
    int64_t key = 0;         //!< Get/Put/Delete target.
    int64_t offset = 0;      //!< Scan start offset.
    int64_t limit = 0;       //!< Scan row limit.
    Row row;                 //!< Put payload.

    uint64_t wireSize() const;
};

/** The response to a Request. */
struct Response
{
    bool ok = false;
    /** Connection reset before the operation executed (fault
     * injection): nothing was applied, the caller must reconnect
     * and may safely re-issue the request. */
    bool reset = false;
    std::vector<Row> rows;   //!< Get/Scan results.
    int64_t count = 0;       //!< Count result / rows affected.
    /** Connection resets absorbed while serving this request
     * (reconnect cost accounting; filled by the proxy layer). */
    uint32_t resets = 0;

    uint64_t wireSize() const;
};

/**
 * In-memory multi-table record store with per-op service times.
 *
 * Mutating operations may be redirected into an overlay (see
 * proxy::ShadowSession) by the proxy; the store itself is oblivious
 * to shadow execution.
 */
class RecordStore
{
  public:
    /** Create an empty table (idempotent). */
    void createTable(const std::string &name);

    /** True if the table exists. */
    bool hasTable(const std::string &name) const;

    /** Number of rows in a table (0 for missing tables). */
    std::size_t tableSize(const std::string &name) const;

    /**
     * Execute a request against the store.
     *
     * @param req The operation.
     * @return The response; ok=false on missing table/row.
     */
    Response execute(const Request &req);

    /**
     * Execute a read-only request (Get/Scan/Count) without mutating
     * the store. panic()s on write requests.
     */
    Response read(const Request &req) const;

    /**
     * Modelled service time for a request (CPU + storage work on
     * the database machine, excluding network).
     */
    sim::SimTime serviceTime(const Request &req) const;

    /** Bulk-load helper used by workload setup. */
    void load(const std::string &table, const std::vector<Row> &rows);

    /**
     * Install a connection-fault hook consulted before each
     * execute(): returning true resets the connection *before* the
     * operation runs (no partial application; the response carries
     * reset=true, ok=false). Used by the chaos plane; nullptr (the
     * default) keeps execute() fault-free.
     */
    void setFaultHook(std::function<bool(const Request &)> hook)
    {
        fault_hook_ = std::move(hook);
    }

    /**
     * Install an observer invoked after every *successfully applied*
     * write (Put/Delete). Test instrumentation: the exactly-once
     * suite counts applied writes per key through it.
     */
    void setWriteObserver(std::function<void(const Request &)> obs)
    {
        write_observer_ = std::move(obs);
    }

    /** Connection resets injected so far. */
    uint64_t resets() const { return resets_; }

  private:
    using Table = std::map<int64_t, Row>;

    std::map<std::string, Table> tables_;
    std::function<bool(const Request &)> fault_hook_;
    std::function<void(const Request &)> write_observer_;
    uint64_t resets_ = 0;
};

} // namespace beehive::db

#endif // BEEHIVE_DB_RECORD_STORE_H
