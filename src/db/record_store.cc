#include "db/record_store.h"

#include <algorithm>

#include "support/logging.h"

namespace beehive::db {

uint64_t
Row::wireSize() const
{
    uint64_t size = 16; // key + framing
    for (const auto &[k, v] : fields)
        size += k.size() + v.size() + 8;
    return size;
}

uint64_t
Request::wireSize() const
{
    uint64_t size = 32 + table.size();
    if (kind == OpKind::Put)
        size += row.wireSize();
    return size;
}

uint64_t
Response::wireSize() const
{
    uint64_t size = 16;
    for (const auto &r : rows)
        size += r.wireSize();
    return size;
}

void
RecordStore::createTable(const std::string &name)
{
    tables_.try_emplace(name);
}

bool
RecordStore::hasTable(const std::string &name) const
{
    return tables_.count(name) > 0;
}

std::size_t
RecordStore::tableSize(const std::string &name) const
{
    auto it = tables_.find(name);
    return it == tables_.end() ? 0 : it->second.size();
}

Response
RecordStore::read(const Request &req) const
{
    bh_assert(req.kind == OpKind::Get || req.kind == OpKind::Scan ||
                  req.kind == OpKind::Count,
              "read() requires a read-only request");
    // Reads never mutate, so delegating through a non-const self is
    // safe and avoids duplicating the dispatch.
    return const_cast<RecordStore *>(this)->execute(req);
}

Response
RecordStore::execute(const Request &req)
{
    Response resp;
    if (fault_hook_ && fault_hook_(req)) {
        // The connection dropped before the operation reached the
        // engine: nothing was applied, re-issuing is always safe.
        ++resets_;
        resp.reset = true;
        return resp;
    }
    auto tit = tables_.find(req.table);
    if (tit == tables_.end())
        return resp;
    Table &table = tit->second;

    switch (req.kind) {
      case OpKind::Get: {
        auto it = table.find(req.key);
        if (it == table.end())
            return resp;
        resp.rows.push_back(it->second);
        resp.ok = true;
        break;
      }
      case OpKind::Put: {
        Row row = req.row;
        row.id = req.key;
        table[req.key] = std::move(row);
        resp.count = 1;
        resp.ok = true;
        if (write_observer_)
            write_observer_(req);
        break;
      }
      case OpKind::Delete: {
        resp.count = static_cast<int64_t>(table.erase(req.key));
        resp.ok = true;
        if (write_observer_)
            write_observer_(req);
        break;
      }
      case OpKind::Scan: {
        auto it = table.begin();
        std::advance(it, std::min<std::size_t>(
            static_cast<std::size_t>(std::max<int64_t>(req.offset, 0)),
            table.size()));
        for (int64_t n = 0; it != table.end() && n < req.limit;
             ++it, ++n) {
            resp.rows.push_back(it->second);
        }
        resp.ok = true;
        break;
      }
      case OpKind::Count: {
        resp.count = static_cast<int64_t>(table.size());
        resp.ok = true;
        break;
      }
    }
    return resp;
}

sim::SimTime
RecordStore::serviceTime(const Request &req) const
{
    // Calibrated to a well-provisioned MySQL on a large instance
    // (the paper uses m4.10xlarge so the DB is never the
    // bottleneck): point ops tens of microseconds, scans scale
    // with the number of rows returned.
    switch (req.kind) {
      case OpKind::Get:
      case OpKind::Delete:
        return sim::SimTime::usec(30);
      case OpKind::Put:
        return sim::SimTime::usec(50);
      case OpKind::Count:
        return sim::SimTime::usec(20);
      case OpKind::Scan:
        return sim::SimTime::usec(25 + 2 * std::max<int64_t>(req.limit,
                                                             1));
    }
    return sim::SimTime::usec(30);
}

void
RecordStore::load(const std::string &table, const std::vector<Row> &rows)
{
    createTable(table);
    Table &t = tables_[table];
    for (const auto &r : rows)
        t[r.id] = r;
}

} // namespace beehive::db
