/**
 * @file
 * BeeHive's low-pause two-space garbage collector (paper Section 4.4).
 *
 * The FaaS execution model gives objects two sharply different
 * lifecycles: everything in the initial closure (plus later remote
 * fetches) is assumed useful for as long as the instance lives,
 * while objects created during a request die with it. The heap
 * (src/vm) therefore keeps a *closure space* that is never
 * collected and a pair of *allocation semispaces*; this collector
 * performs a Cheney copying collection of the active semispace.
 *
 * Roots are:
 *   - interpreter frames and statics (registered value-root
 *     providers);
 *   - server-side address mapping tables (registered ref-root
 *     providers), so shared objects stay alive and the tables are
 *     updated when objects move -- exactly the paper's server GC
 *     extension;
 *   - closure-space objects on *dirty cards*: the heap marks a
 *     512-byte card whenever a closure->allocation reference is
 *     stored, so only marked cards are scanned instead of the whole
 *     closure space.
 *
 * The collector does real copying and pointer fixup; in addition it
 * *models* the pause duration from the work performed so the
 * simulation can charge it (Section 5.6 reports millisecond-scale
 * median pauses that can overlap with network waits).
 */

#ifndef BEEHIVE_GC_COLLECTOR_H
#define BEEHIVE_GC_COLLECTOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim_time.h"
#include "sim/stats.h"
#include "vm/heap.h"
#include "vm/value.h"

namespace beehive::gc {

/** Statistics of one collection cycle. */
struct GcCycleStats
{
    uint64_t objects_copied = 0;
    uint64_t bytes_copied = 0;
    uint64_t roots_visited = 0;
    uint64_t cards_scanned = 0;
    uint64_t bytes_freed = 0;
    /** Modelled stop-the-world pause. */
    sim::SimTime pause;
};

/** Lifetime totals across cycles. */
struct GcTotals
{
    uint64_t collections = 0;
    uint64_t objects_copied = 0;
    uint64_t bytes_copied = 0;
    sim::SampleSet pause_ms; //!< per-cycle pauses (median stats)
};

/** Cost model for the pause estimate. */
struct GcCostModel
{
    double base_ns = 350000.0;      //!< fixed stop/scan overhead
    double per_copied_byte_ns = 1.6;
    double per_card_ns = 1800.0;
    double per_root_ns = 20.0;
};

/** Copying collector over a Heap's allocation semispaces. */
class SemiSpaceCollector
{
  public:
    /** Visits every value slot that may hold a root reference. */
    using ValueVisitor = std::function<void(vm::Value &)>;
    /** A provider enumerates its roots through the visitor. */
    using ValueRootProvider =
        std::function<void(const ValueVisitor &)>;

    /** Visits raw Ref roots (e.g. mapping-table entries). */
    using RefVisitor = std::function<void(vm::Ref &)>;
    using RefRootProvider = std::function<void(const RefVisitor &)>;

    explicit SemiSpaceCollector(vm::Heap &heap,
                                GcCostModel model = GcCostModel{});

    /** Register a provider of value roots (frames, statics). */
    void addValueRoots(ValueRootProvider p);

    /** Register a provider of ref roots (mapping tables). */
    void addRefRoots(RefRootProvider p);

    /**
     * Run one stop-the-world copying collection.
     *
     * On return the previously active semispace is empty and the
     * heap allocates from the other one.
     */
    GcCycleStats collect();

    const GcTotals &totals() const { return totals_; }

    /** Median pause across all cycles so far (ms; NaN when none). */
    double medianPauseMs() const;

    /**
     * Observe every completed cycle (telemetry hook). The collector
     * stays free of any telemetry dependency; the owning runtime
     * decides what to record. Null (the default) costs one branch.
     */
    using CycleObserver = std::function<void(const GcCycleStats &)>;
    void setObserver(CycleObserver cb) { observer_ = std::move(cb); }

  private:
    /** Copy a from-space object to to-space (idempotent). */
    vm::Ref evacuate(vm::Ref ref);

    /** Evacuate the target of a value slot if needed. */
    void processValue(vm::Value &v);

    vm::Heap &heap_;
    GcCostModel model_;
    std::vector<ValueRootProvider> value_roots_;
    std::vector<RefRootProvider> ref_roots_;
    GcTotals totals_;
    CycleObserver observer_;

    // Per-cycle working state.
    uint8_t from_space_ = 0;
    uint8_t to_space_ = 0;
    GcCycleStats cycle_;
};

} // namespace beehive::gc

#endif // BEEHIVE_GC_COLLECTOR_H
