#include "gc/collector.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace beehive::gc {

using vm::Heap;
using vm::ObjHeader;
using vm::ObjKind;
using vm::Ref;
using vm::Space;
using vm::Value;

SemiSpaceCollector::SemiSpaceCollector(Heap &heap, GcCostModel model)
    : heap_(heap), model_(model)
{
}

void
SemiSpaceCollector::addValueRoots(ValueRootProvider p)
{
    value_roots_.push_back(std::move(p));
}

void
SemiSpaceCollector::addRefRoots(RefRootProvider p)
{
    ref_roots_.push_back(std::move(p));
}

Ref
SemiSpaceCollector::evacuate(Ref ref)
{
    if (ref == vm::kNullRef || vm::isRemote(ref))
        return ref;
    if (vm::refSpace(ref) != from_space_)
        return ref; // closure space or already in to-space
    ObjHeader &hdr = heap_.header(ref);
    if (hdr.forward != vm::kNullRef)
        return hdr.forward;
    Ref copy = heap_.cloneObject(ref, to_space_);
    bh_assert(copy != vm::kNullRef,
              "to-space exhausted during GC (live set too large)");
    hdr.forward = copy;
    ++cycle_.objects_copied;
    cycle_.bytes_copied += hdr.size;
    return copy;
}

void
SemiSpaceCollector::processValue(Value &v)
{
    if (!v.isRef() || v.asRef() == vm::kNullRef ||
        vm::isRemote(v.asRef())) {
        return;
    }
    Ref moved = evacuate(v.asRef());
    if (moved != v.asRef())
        v = Value::ofRef(moved);
}

GcCycleStats
SemiSpaceCollector::collect()
{
    cycle_ = GcCycleStats{};
    from_space_ = heap_.allocSpaceId();
    to_space_ = heap_.otherAllocSpaceId();
    Space &from = heap_.space(from_space_);
    Space &to = heap_.space(to_space_);
    bh_assert(to.used() == Space::firstOffset(),
              "to-space not empty before GC");
    uint64_t from_used = from.used();

    // Phase 1: value roots (frames, statics).
    for (auto &provider : value_roots_) {
        provider([&](Value &v) {
            ++cycle_.roots_visited;
            processValue(v);
        });
    }

    // Phase 2: ref roots (mapping tables). Shared objects are kept
    // alive and the table entries are updated when objects move.
    for (auto &provider : ref_roots_) {
        provider([&](Ref &r) {
            ++cycle_.roots_visited;
            if (r != vm::kNullRef && !vm::isRemote(r))
                r = evacuate(r);
        });
    }

    // Phase 3: dirty cards of the closure space. Only closure-space
    // objects overlapping a dirty card can reference the allocation
    // space (the heap's write barrier guarantees it). Clear the
    // marks first; stores performed during the scan re-mark cards
    // that still hold cross-space references after fixup.
    std::vector<bool> was_dirty(heap_.cards().cardCount());
    for (std::size_t c = 0; c < was_dirty.size(); ++c)
        was_dirty[c] = heap_.cards().isDirty(c);
    heap_.cards().clearAll();

    heap_.forEachObject(Heap::kClosureSpaceId, [&](Ref obj) {
        const ObjHeader &hdr = heap_.header(obj);
        if (hdr.kind == ObjKind::Bytes)
            return;
        uint64_t begin = vm::refOffset(obj);
        uint64_t end = begin + hdr.size;
        std::size_t first_card = begin / vm::CardTable::kCardBytes;
        std::size_t last_card = (end - 1) / vm::CardTable::kCardBytes;
        bool any_dirty = false;
        for (std::size_t c = first_card; c <= last_card; ++c) {
            if (c < was_dirty.size() && was_dirty[c]) {
                any_dirty = true;
                ++cycle_.cards_scanned;
            }
        }
        if (!any_dirty)
            return;
        for (uint32_t i = 0; i < hdr.count; ++i) {
            Value v = heap_.field(obj, i);
            if (!v.isRef() || v.asRef() == vm::kNullRef ||
                vm::isRemote(v.asRef())) {
                continue;
            }
            Ref moved = evacuate(v.asRef());
            // setFieldRaw re-marks the card if still cross-space.
            heap_.setFieldRaw(obj, i, Value::ofRef(moved));
        }
    });

    // Phase 4: Cheney scan of to-space.
    uint64_t scan = Space::firstOffset();
    while (scan < to.used()) {
        Ref obj = vm::makeRef(to_space_, scan);
        ObjHeader &hdr = heap_.header(obj);
        if (hdr.kind != ObjKind::Bytes) {
            for (uint32_t i = 0; i < hdr.count; ++i) {
                Value v = heap_.field(obj, i);
                if (v.isRef() && v.asRef() != vm::kNullRef &&
                    !vm::isRemote(v.asRef())) {
                    Ref moved = evacuate(v.asRef());
                    if (moved != v.asRef())
                        heap_.setFieldRaw(obj, i, Value::ofRef(moved));
                }
            }
        }
        scan += hdr.size;
    }

    // Phase 5: reclaim from-space and flip.
    from.reset();
    heap_.flipAllocSpace();

    cycle_.bytes_freed =
        from_used - Space::firstOffset() >= cycle_.bytes_copied
            ? from_used - Space::firstOffset() - cycle_.bytes_copied
            : 0;

    double pause_ns =
        model_.base_ns +
        model_.per_copied_byte_ns *
            static_cast<double>(cycle_.bytes_copied) +
        model_.per_card_ns * static_cast<double>(cycle_.cards_scanned) +
        model_.per_root_ns * static_cast<double>(cycle_.roots_visited);
    cycle_.pause = sim::SimTime::nsec(static_cast<int64_t>(pause_ns));

    ++totals_.collections;
    totals_.objects_copied += cycle_.objects_copied;
    totals_.bytes_copied += cycle_.bytes_copied;
    totals_.pause_ms.add(cycle_.pause.toMillis());
    if (observer_)
        observer_(cycle_);
    return cycle_;
}

double
SemiSpaceCollector::medianPauseMs() const
{
    // Shared stats implementation (nearest-rank, sim/stats.h).
    return totals_.pause_ms.median();
}

} // namespace beehive::gc
