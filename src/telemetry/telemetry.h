/**
 * @file
 * Causal span tracing and a metrics registry over simulated time.
 *
 * A Tracer is owned by one Testbed (never shared across trials), so
 * the `harness/parallel.h` trial driver stays deterministic: every
 * trial records into its own slab and serial vs `--threads N` runs
 * export identical traces. All recording reads the owning
 * Simulation's clock, so instrumented components only need a tracer
 * pointer, not a clock.
 *
 * Spans are kept in a slab-backed ring buffer: span ids are a
 * monotonic sequence and span @c i lives at slot `(i-1) % capacity`.
 * When the run outlives the slab, the oldest spans are overwritten
 * and counted in `spansDropped()` -- recording never allocates after
 * construction and never perturbs the simulation.
 *
 * The ambient Context mechanism threads causality through the
 * synchronous call chain (client -> sink -> server -> offload ->
 * platform) without changing any signatures: a caller sets the
 * current (request, span) around a downstream call via
 * ScopedContext; asynchronous continuations capture their Context
 * explicitly.
 */

#ifndef BEEHIVE_TELEMETRY_TELEMETRY_H
#define BEEHIVE_TELEMETRY_TELEMETRY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/sim_time.h"
#include "sim/stats.h"

namespace beehive::sim {
class Simulation;
}

namespace beehive::telemetry {

/**
 * Critical-path phase a span's *self time* is attributed to.
 * Keep phaseName() in sync.
 */
enum class Phase : uint8_t
{
    Request, //!< client-observed request envelope
    Queue,   //!< server request-thread pool wait
    Exec,    //!< interpreter execution (server or function CPU)
    Offload, //!< offload coordination + dispatch/transfer wire time
    Boot,    //!< instance provisioning / cold / warm / restore boot
    Fetch,   //!< code/data fallback fetches
    Native,  //!< native-state fallback round trips
    Sync,    //!< monitor acquire waits + volatile sync
    Db,      //!< DB wire round trips (incl. connection fallback)
    Gc,      //!< stop-the-world collector pauses
    Net,     //!< result return / closure transfer wire time
    Other,
};

constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::Other) + 1;

const char *phaseName(Phase p);

using SpanId = uint64_t;
constexpr SpanId kNoSpan = 0;

/** One recorded span. @c name must be a string literal. */
struct Span
{
    SpanId id = kNoSpan;
    SpanId parent = kNoSpan;
    uint64_t request = 0; //!< 0 = background work (prewarm, sweeps)
    const char *name = "";
    Phase phase = Phase::Other;
    uint32_t track = 0; //!< synthetic exporter thread, see Tracer
    sim::SimTime start;
    sim::SimTime end;
    bool open = false;

    sim::SimTime duration() const { return end - start; }
};

/**
 * Named counters and SampleSet-backed histograms. std::map keys give
 * deterministic iteration order for export and text reports.
 */
class MetricsRegistry
{
  public:
    void count(const std::string &name, uint64_t by = 1)
    {
        counters_[name] += by;
    }

    /** Overwrite a counter (harvesting an existing stats struct). */
    void set(const std::string &name, uint64_t v)
    {
        counters_[name] = v;
    }

    /** Value of a counter, 0 when never touched. */
    uint64_t counter(const std::string &name) const;

    void observe(const std::string &name, double v)
    {
        histograms_[name].add(v);
    }

    /** Histogram by name, nullptr when never touched. */
    const sim::SampleSet *histogram(const std::string &name) const;

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, sim::SampleSet> &histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, sim::SampleSet> histograms_;
};

/** Ambient causal position: the request and span downstream work
 * should parent under. */
struct Context
{
    uint64_t request = 0;
    SpanId span = kNoSpan;
};

/** Per-run span recorder + metrics registry. */
class Tracer
{
  public:
    /**
     * @param sim Owning simulation (clock source).
     * @param capacity Ring-buffer slots; must be >= 1.
     */
    explicit Tracer(sim::Simulation &sim,
                    std::size_t capacity = 1u << 18);

    /** Allocate a fresh request id (1-based, monotonic). */
    uint64_t newRequest() { return next_request_++; }

    /** Requests allocated so far. */
    uint64_t requestCount() const { return next_request_ - 1; }

    /**
     * Open a span starting now.
     *
     * @param name Static string naming the span kind.
     * @param track Synthetic exporter thread (see newTrack()).
     * @param parent Enclosing span or kNoSpan for a root.
     * @param request Request this span belongs to (0 = background).
     */
    SpanId begin(const char *name, Phase phase, uint32_t track,
                 SpanId parent = kNoSpan, uint64_t request = 0);

    /** Open a span under the ambient Context. */
    SpanId beginUnder(const char *name, Phase phase, uint32_t track)
    {
        return begin(name, phase, track, current_.span,
                     current_.request);
    }

    /** Close a span at the current simulated time. No-op if the
     * slot was already recycled by ring wrap-around. */
    void end(SpanId id);

    Context current() const { return current_; }
    void setCurrent(Context c) { current_ = c; }

    /** Register a synthetic exporter thread; returns its track id.
     * Track 0 ("clients") is pre-registered. */
    uint32_t newTrack(std::string name);

    uint32_t clientsTrack() const { return 0; }

    const std::vector<std::string> &tracks() const
    {
        return track_names_;
    }

    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /** Surviving spans in id (= start) order. */
    std::vector<Span> spans() const;

    uint64_t spansRecorded() const { return next_span_ - 1; }
    uint64_t spansDropped() const { return dropped_; }

    sim::Simulation &sim() { return sim_; }

  private:
    Span &slot(SpanId id)
    {
        return slab_[(id - 1) % slab_.size()];
    }

    sim::Simulation &sim_;
    std::vector<Span> slab_;
    SpanId next_span_ = 1;
    uint64_t next_request_ = 1;
    uint64_t dropped_ = 0;
    Context current_;
    std::vector<std::string> track_names_;
    MetricsRegistry metrics_;
};

/**
 * RAII ambient-context switch. Null-tracer safe so call sites can
 * pass the (possibly null) tracer straight through.
 */
class ScopedContext
{
  public:
    ScopedContext(Tracer *t, Context c) : t_(t)
    {
        if (t_) {
            saved_ = t_->current();
            t_->setCurrent(c);
        }
    }
    ~ScopedContext()
    {
        if (t_)
            t_->setCurrent(saved_);
    }
    ScopedContext(const ScopedContext &) = delete;
    ScopedContext &operator=(const ScopedContext &) = delete;

  private:
    Tracer *t_;
    Context saved_;
};

/**
 * RAII span over a synchronous section: opens under the ambient
 * context, makes itself ambient, closes + restores on destruction.
 */
class ScopedSpan
{
  public:
    ScopedSpan() = default;
    ScopedSpan(Tracer *t, const char *name, Phase phase,
               uint32_t track)
        : t_(t)
    {
        if (t_) {
            saved_ = t_->current();
            id_ = t_->beginUnder(name, phase, track);
            t_->setCurrent({saved_.request, id_});
        }
    }
    ~ScopedSpan()
    {
        if (t_) {
            t_->end(id_);
            t_->setCurrent(saved_);
        }
    }
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    SpanId id() const { return id_; }

  private:
    Tracer *t_ = nullptr;
    Context saved_;
    SpanId id_ = kNoSpan;
};

} // namespace beehive::telemetry

#endif // BEEHIVE_TELEMETRY_TELEMETRY_H
