/**
 * @file
 * Critical-path attribution: fold one request's span tree into a
 * per-phase breakdown whose phases sum to end-to-end latency.
 *
 * Attribution is by *self time*: each span contributes its duration
 * minus the union of its children's intervals to its own Phase.
 * For a well-nested tree (children contained in their parent,
 * siblings non-overlapping -- which the instrumentation guarantees
 * and validateSpans() checks), the per-phase sums add up exactly to
 * the root span's duration.
 */

#ifndef BEEHIVE_TELEMETRY_CRITICAL_PATH_H
#define BEEHIVE_TELEMETRY_CRITICAL_PATH_H

#include <optional>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace beehive::telemetry {

/** Per-phase self-time breakdown of one request. */
struct PhaseBreakdown
{
    uint64_t request = 0;
    SpanId root = kNoSpan;
    sim::SimTime total; //!< root span duration (end-to-end)
    sim::SimTime by_phase[kPhaseCount];

    /** Sum over phases; equals total for a well-nested tree. */
    sim::SimTime sum() const;
};

/** Mean per-phase breakdown across completed requests. */
struct PhaseAggregate
{
    uint64_t requests = 0; //!< requests with a complete span tree
    sim::SampleSet total_ms;
    sim::SampleSet phase_ms[kPhaseCount];
};

/** Request ids with at least one surviving span, ascending. */
std::vector<uint64_t> requestIds(const Tracer &t);

/**
 * Breakdown for @p request. nullopt when the request has no root
 * span or any span in its tree is still open (incomplete request).
 */
std::optional<PhaseBreakdown> analyzeRequest(const Tracer &t,
                                             uint64_t request);

/** Aggregate analyzeRequest over every completed request. */
PhaseAggregate aggregateBreakdown(const Tracer &t);

/**
 * Structural well-formedness check over all surviving spans:
 * negative durations, children escaping their parent's interval,
 * overlapping siblings, and child spans whose parent was recorded
 * under a different request. Open spans are skipped (a run may end
 * with work in flight). Returns human-readable violations; empty
 * means well formed.
 */
std::vector<std::string> validateSpans(const Tracer &t);

} // namespace beehive::telemetry

#endif // BEEHIVE_TELEMETRY_CRITICAL_PATH_H
