#include "telemetry/critical_path.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace beehive::telemetry {

using sim::SimTime;

SimTime
PhaseBreakdown::sum() const
{
    SimTime s;
    for (std::size_t i = 0; i < kPhaseCount; ++i)
        s += by_phase[i];
    return s;
}

std::vector<uint64_t>
requestIds(const Tracer &t)
{
    std::set<uint64_t> ids;
    for (const Span &s : t.spans()) {
        if (s.request != 0)
            ids.insert(s.request);
    }
    return {ids.begin(), ids.end()};
}

namespace {

struct Tree
{
    std::unordered_map<SpanId, const Span *> by_id;
    // Children in (start, id) order under each parent.
    std::unordered_map<SpanId, std::vector<const Span *>> kids;
    std::vector<const Span *> roots;
    bool any_open = false;
};

Tree
buildTree(const std::vector<Span> &spans, uint64_t request)
{
    Tree tree;
    for (const Span &s : spans) {
        if (s.request != request)
            continue;
        if (s.open)
            tree.any_open = true;
        tree.by_id[s.id] = &s;
    }
    for (auto &[id, s] : tree.by_id) {
        // A span whose parent was dropped by ring wrap-around (or
        // lives on another request, e.g. a shadow flight forked
        // from a user request) is treated as a root.
        if (s->parent != kNoSpan && tree.by_id.count(s->parent))
            tree.kids[s->parent].push_back(s);
        else
            tree.roots.push_back(s);
    }
    auto order = [](const Span *a, const Span *b) {
        return a->start != b->start ? a->start < b->start
                                    : a->id < b->id;
    };
    for (auto &[id, v] : tree.kids)
        std::sort(v.begin(), v.end(), order);
    std::sort(tree.roots.begin(), tree.roots.end(), order);
    return tree;
}

void
foldSelfTimes(const Tree &tree, const Span &s, PhaseBreakdown &out)
{
    SimTime covered;
    auto it = tree.kids.find(s.id);
    if (it != tree.kids.end()) {
        // Children are sorted by start; accumulate the length of
        // the union of their intervals clipped to the parent.
        SimTime frontier = s.start;
        for (const Span *c : it->second) {
            SimTime b = std::max(std::max(c->start, frontier),
                                 s.start);
            SimTime e = std::min(c->end, s.end);
            if (e > b) {
                covered += e - b;
                frontier = e;
            } else {
                frontier = std::max(frontier, e);
            }
            foldSelfTimes(tree, *c, out);
        }
    }
    SimTime self = s.duration() - covered;
    if (self > SimTime())
        out.by_phase[static_cast<std::size_t>(s.phase)] += self;
}

/** Analyze one request over a span snapshot that outlives the call
 * (the tree holds pointers into it). */
std::optional<PhaseBreakdown>
analyzeOver(const std::vector<Span> &spans, uint64_t request)
{
    Tree tree = buildTree(spans, request);
    if (tree.any_open || tree.roots.size() != 1)
        return std::nullopt;
    PhaseBreakdown out;
    out.request = request;
    out.root = tree.roots[0]->id;
    out.total = tree.roots[0]->duration();
    foldSelfTimes(tree, *tree.roots[0], out);
    return out;
}

} // namespace

std::optional<PhaseBreakdown>
analyzeRequest(const Tracer &t, uint64_t request)
{
    std::vector<Span> spans = t.spans();
    return analyzeOver(spans, request);
}

PhaseAggregate
aggregateBreakdown(const Tracer &t)
{
    PhaseAggregate agg;
    // One pass grouping spans per request (std::map: ascending
    // request order keeps the SampleSets deterministic), then one
    // tree per group -- not one full-slab scan per request.
    std::map<uint64_t, std::vector<Span>> groups;
    for (const Span &s : t.spans()) {
        if (s.request != 0)
            groups[s.request].push_back(s);
    }
    for (const auto &[req, group] : groups) {
        auto b = analyzeOver(group, req);
        if (!b)
            continue;
        ++agg.requests;
        agg.total_ms.add(b->total.toMillis());
        for (std::size_t i = 0; i < kPhaseCount; ++i)
            agg.phase_ms[i].add(b->by_phase[i].toMillis());
    }
    return agg;
}

std::vector<std::string>
validateSpans(const Tracer &t)
{
    std::vector<std::string> out;
    std::vector<Span> spans = t.spans();
    std::unordered_map<SpanId, const Span *> by_id;
    for (const Span &s : spans)
        by_id[s.id] = &s;

    auto describe = [](const Span &s) {
        return std::string(s.name) + "#" + std::to_string(s.id);
    };

    std::map<SpanId, std::vector<const Span *>> kids;
    for (const Span &s : spans) {
        if (s.open)
            continue;
        if (s.end < s.start)
            out.push_back("negative duration: " + describe(s));
        if (s.parent == kNoSpan)
            continue;
        auto pit = by_id.find(s.parent);
        if (pit == by_id.end())
            continue; // parent dropped by wrap-around: tolerated
        const Span &p = *pit->second;
        if (p.request != s.request)
            out.push_back("cross-request child: " + describe(s) +
                          " under " + describe(p));
        if (!p.open && (s.start < p.start || s.end > p.end))
            out.push_back("child escapes parent: " + describe(s) +
                          " not within " + describe(p));
        kids[s.parent].push_back(&s);
    }
    for (auto &[parent, v] : kids) {
        std::sort(v.begin(), v.end(),
                  [](const Span *a, const Span *b) {
                      return a->start != b->start
                                 ? a->start < b->start
                                 : a->id < b->id;
                  });
        for (std::size_t i = 1; i < v.size(); ++i) {
            if (v[i]->start < v[i - 1]->end)
                out.push_back("overlapping siblings: " +
                              describe(*v[i - 1]) + " and " +
                              describe(*v[i]));
        }
    }
    return out;
}

} // namespace beehive::telemetry
