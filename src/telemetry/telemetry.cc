#include "telemetry/telemetry.h"

#include <algorithm>

#include "sim/simulation.h"
#include "support/logging.h"

namespace beehive::telemetry {

const char *
phaseName(Phase p)
{
    switch (p) {
    case Phase::Request:
        return "request";
    case Phase::Queue:
        return "queue";
    case Phase::Exec:
        return "exec";
    case Phase::Offload:
        return "offload";
    case Phase::Boot:
        return "boot";
    case Phase::Fetch:
        return "fetch";
    case Phase::Native:
        return "native";
    case Phase::Sync:
        return "sync";
    case Phase::Db:
        return "db";
    case Phase::Gc:
        return "gc";
    case Phase::Net:
        return "net";
    case Phase::Other:
        return "other";
    }
    return "?";
}

uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const sim::SampleSet *
MetricsRegistry::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

Tracer::Tracer(sim::Simulation &sim, std::size_t capacity)
    : sim_(sim), slab_(std::max<std::size_t>(capacity, 1))
{
    track_names_.push_back("clients");
}

SpanId
Tracer::begin(const char *name, Phase phase, uint32_t track,
              SpanId parent, uint64_t request)
{
    SpanId id = next_span_++;
    Span &s = slot(id);
    if (s.id != kNoSpan)
        ++dropped_; // ring wrapped: the old span is lost
    s.id = id;
    s.parent = parent;
    s.request = request;
    s.name = name;
    s.phase = phase;
    s.track = track;
    s.start = sim_.now();
    s.end = s.start;
    s.open = true;
    return id;
}

void
Tracer::end(SpanId id)
{
    if (id == kNoSpan)
        return;
    Span &s = slot(id);
    if (s.id != id || !s.open)
        return; // recycled by wrap-around (already counted)
    s.end = sim_.now();
    s.open = false;
}

uint32_t
Tracer::newTrack(std::string name)
{
    track_names_.push_back(std::move(name));
    return static_cast<uint32_t>(track_names_.size() - 1);
}

std::vector<Span>
Tracer::spans() const
{
    std::vector<Span> out;
    out.reserve(std::min<uint64_t>(spansRecorded(), slab_.size()));
    for (const Span &s : slab_) {
        if (s.id != kNoSpan)
            out.push_back(s);
    }
    std::sort(out.begin(), out.end(),
              [](const Span &a, const Span &b) { return a.id < b.id; });
    return out;
}

} // namespace beehive::telemetry
