#include "telemetry/export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "support/logging.h"

namespace beehive::telemetry {

namespace {

/** Escape for a JSON string literal (names are ASCII already). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
toChromeTraceJson(const Tracer &t, uint64_t only_request)
{
    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char buf[256];

    const auto &tracks = t.tracks();
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":"
                      "\"%s\"}}",
                      first ? "" : ",", i,
                      jsonEscape(tracks[i]).c_str());
        out += buf;
        first = false;
    }

    for (const Span &s : t.spans()) {
        if (s.open)
            continue;
        if (only_request != 0 && s.request != only_request)
            continue;
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32
            ",\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%.3f,"
            "\"dur\":%.3f,\"args\":{\"request\":%" PRIu64
            ",\"span\":%" PRIu64 ",\"parent\":%" PRIu64 "}}",
            first ? "" : ",", s.track, jsonEscape(s.name).c_str(),
            phaseName(s.phase), s.start.toMicros(),
            s.duration().toMicros(), s.request, s.id, s.parent);
        out += buf;
        first = false;
    }
    out += "]}";
    return out;
}

bool
writeTraceFile(const std::string &json, const std::string &path)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        warn("telemetry: cannot open trace file '%s'", path.c_str());
        return false;
    }
    f << json << "\n";
    return static_cast<bool>(f);
}

bool
writeChromeTrace(const Tracer &t, const std::string &path,
                 uint64_t only_request)
{
    return writeTraceFile(toChromeTraceJson(t, only_request), path);
}

} // namespace beehive::telemetry
