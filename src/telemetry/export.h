/**
 * @file
 * Chrome trace-event JSON exporter (Perfetto-loadable).
 *
 * Emits the classic trace-event format: one "M" thread_name
 * metadata record per Tracer track (a synthetic thread per
 * instance/endpoint/client pool) and one "X" complete event per
 * closed span, with microsecond timestamps taken from simulated
 * time. Span/request/parent ids ride in "args" so a trace can be
 * joined back to the analyzer's output.
 */

#ifndef BEEHIVE_TELEMETRY_EXPORT_H
#define BEEHIVE_TELEMETRY_EXPORT_H

#include <string>

#include "telemetry/telemetry.h"

namespace beehive::telemetry {

/**
 * Serialize the tracer's surviving spans as Chrome trace JSON.
 *
 * @param only_request When non-zero, restrict the export to that
 *        request's span tree (still includes all thread metadata).
 */
std::string toChromeTraceJson(const Tracer &t,
                              uint64_t only_request = 0);

/** Write toChromeTraceJson() to @p path. Returns false on I/O
 * failure (logged). */
bool writeChromeTrace(const Tracer &t, const std::string &path,
                      uint64_t only_request = 0);

/** Write an already-serialized trace to @p path. */
bool writeTraceFile(const std::string &json,
                    const std::string &path);

} // namespace beehive::telemetry

#endif // BEEHIVE_TELEMETRY_EXPORT_H
