# Empty dependencies file for table5_fallbacks.
# This may be replaced when dependencies are built.
