file(REMOVE_RECURSE
  "CMakeFiles/table5_fallbacks.dir/table5_fallbacks.cc.o"
  "CMakeFiles/table5_fallbacks.dir/table5_fallbacks.cc.o.d"
  "table5_fallbacks"
  "table5_fallbacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_fallbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
