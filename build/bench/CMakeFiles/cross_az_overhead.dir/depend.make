# Empty dependencies file for cross_az_overhead.
# This may be replaced when dependencies are built.
