file(REMOVE_RECURSE
  "CMakeFiles/cross_az_overhead.dir/cross_az_overhead.cc.o"
  "CMakeFiles/cross_az_overhead.dir/cross_az_overhead.cc.o.d"
  "cross_az_overhead"
  "cross_az_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_az_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
