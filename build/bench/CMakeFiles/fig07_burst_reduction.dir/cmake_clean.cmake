file(REMOVE_RECURSE
  "CMakeFiles/fig07_burst_reduction.dir/fig07_burst_reduction.cc.o"
  "CMakeFiles/fig07_burst_reduction.dir/fig07_burst_reduction.cc.o.d"
  "fig07_burst_reduction"
  "fig07_burst_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_burst_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
