# Empty dependencies file for fig07_burst_reduction.
# This may be replaced when dependencies are built.
