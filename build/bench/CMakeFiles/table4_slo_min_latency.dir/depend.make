# Empty dependencies file for table4_slo_min_latency.
# This may be replaced when dependencies are built.
