file(REMOVE_RECURSE
  "CMakeFiles/combo_scaling.dir/combo_scaling.cc.o"
  "CMakeFiles/combo_scaling.dir/combo_scaling.cc.o.d"
  "combo_scaling"
  "combo_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
