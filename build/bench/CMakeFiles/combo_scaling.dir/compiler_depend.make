# Empty compiler generated dependencies file for combo_scaling.
# This may be replaced when dependencies are built.
