file(REMOVE_RECURSE
  "CMakeFiles/table2_native_methods.dir/table2_native_methods.cc.o"
  "CMakeFiles/table2_native_methods.dir/table2_native_methods.cc.o.d"
  "table2_native_methods"
  "table2_native_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_native_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
