# Empty dependencies file for table2_native_methods.
# This may be replaced when dependencies are built.
