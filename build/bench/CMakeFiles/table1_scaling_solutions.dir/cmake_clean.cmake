file(REMOVE_RECURSE
  "CMakeFiles/table1_scaling_solutions.dir/table1_scaling_solutions.cc.o"
  "CMakeFiles/table1_scaling_solutions.dir/table1_scaling_solutions.cc.o.d"
  "table1_scaling_solutions"
  "table1_scaling_solutions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scaling_solutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
