# Empty dependencies file for table1_scaling_solutions.
# This may be replaced when dependencies are built.
