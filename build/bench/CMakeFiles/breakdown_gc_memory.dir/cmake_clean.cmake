file(REMOVE_RECURSE
  "CMakeFiles/breakdown_gc_memory.dir/breakdown_gc_memory.cc.o"
  "CMakeFiles/breakdown_gc_memory.dir/breakdown_gc_memory.cc.o.d"
  "breakdown_gc_memory"
  "breakdown_gc_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown_gc_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
