# Empty dependencies file for breakdown_gc_memory.
# This may be replaced when dependencies are built.
