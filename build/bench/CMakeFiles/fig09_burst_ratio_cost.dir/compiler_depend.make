# Empty compiler generated dependencies file for fig09_burst_ratio_cost.
# This may be replaced when dependencies are built.
