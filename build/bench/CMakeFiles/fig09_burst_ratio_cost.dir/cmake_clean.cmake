file(REMOVE_RECURSE
  "CMakeFiles/fig09_burst_ratio_cost.dir/fig09_burst_ratio_cost.cc.o"
  "CMakeFiles/fig09_burst_ratio_cost.dir/fig09_burst_ratio_cost.cc.o.d"
  "fig09_burst_ratio_cost"
  "fig09_burst_ratio_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_burst_ratio_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
