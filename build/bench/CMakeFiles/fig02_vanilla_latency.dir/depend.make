# Empty dependencies file for fig02_vanilla_latency.
# This may be replaced when dependencies are built.
