file(REMOVE_RECURSE
  "CMakeFiles/fig02_vanilla_latency.dir/fig02_vanilla_latency.cc.o"
  "CMakeFiles/fig02_vanilla_latency.dir/fig02_vanilla_latency.cc.o.d"
  "fig02_vanilla_latency"
  "fig02_vanilla_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_vanilla_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
