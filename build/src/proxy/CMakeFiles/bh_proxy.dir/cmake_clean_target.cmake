file(REMOVE_RECURSE
  "libbh_proxy.a"
)
