file(REMOVE_RECURSE
  "CMakeFiles/bh_proxy.dir/connection_proxy.cc.o"
  "CMakeFiles/bh_proxy.dir/connection_proxy.cc.o.d"
  "CMakeFiles/bh_proxy.dir/shadow_session.cc.o"
  "CMakeFiles/bh_proxy.dir/shadow_session.cc.o.d"
  "libbh_proxy.a"
  "libbh_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
