
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/connection_proxy.cc" "src/proxy/CMakeFiles/bh_proxy.dir/connection_proxy.cc.o" "gcc" "src/proxy/CMakeFiles/bh_proxy.dir/connection_proxy.cc.o.d"
  "/root/repo/src/proxy/shadow_session.cc" "src/proxy/CMakeFiles/bh_proxy.dir/shadow_session.cc.o" "gcc" "src/proxy/CMakeFiles/bh_proxy.dir/shadow_session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/bh_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bh_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
