file(REMOVE_RECURSE
  "libbh_support.a"
)
