file(REMOVE_RECURSE
  "CMakeFiles/bh_support.dir/logging.cc.o"
  "CMakeFiles/bh_support.dir/logging.cc.o.d"
  "CMakeFiles/bh_support.dir/rng.cc.o"
  "CMakeFiles/bh_support.dir/rng.cc.o.d"
  "CMakeFiles/bh_support.dir/strutil.cc.o"
  "CMakeFiles/bh_support.dir/strutil.cc.o.d"
  "libbh_support.a"
  "libbh_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
