# Empty dependencies file for bh_support.
# This may be replaced when dependencies are built.
