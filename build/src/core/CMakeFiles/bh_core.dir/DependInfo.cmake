
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/closure.cc" "src/core/CMakeFiles/bh_core.dir/closure.cc.o" "gcc" "src/core/CMakeFiles/bh_core.dir/closure.cc.o.d"
  "/root/repo/src/core/function.cc" "src/core/CMakeFiles/bh_core.dir/function.cc.o" "gcc" "src/core/CMakeFiles/bh_core.dir/function.cc.o.d"
  "/root/repo/src/core/mapping.cc" "src/core/CMakeFiles/bh_core.dir/mapping.cc.o" "gcc" "src/core/CMakeFiles/bh_core.dir/mapping.cc.o.d"
  "/root/repo/src/core/offload.cc" "src/core/CMakeFiles/bh_core.dir/offload.cc.o" "gcc" "src/core/CMakeFiles/bh_core.dir/offload.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/bh_core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/bh_core.dir/server.cc.o.d"
  "/root/repo/src/core/sync.cc" "src/core/CMakeFiles/bh_core.dir/sync.cc.o" "gcc" "src/core/CMakeFiles/bh_core.dir/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/bh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/bh_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bh_db.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/bh_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/bh_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bh_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
