file(REMOVE_RECURSE
  "CMakeFiles/bh_core.dir/closure.cc.o"
  "CMakeFiles/bh_core.dir/closure.cc.o.d"
  "CMakeFiles/bh_core.dir/function.cc.o"
  "CMakeFiles/bh_core.dir/function.cc.o.d"
  "CMakeFiles/bh_core.dir/mapping.cc.o"
  "CMakeFiles/bh_core.dir/mapping.cc.o.d"
  "CMakeFiles/bh_core.dir/offload.cc.o"
  "CMakeFiles/bh_core.dir/offload.cc.o.d"
  "CMakeFiles/bh_core.dir/server.cc.o"
  "CMakeFiles/bh_core.dir/server.cc.o.d"
  "CMakeFiles/bh_core.dir/sync.cc.o"
  "CMakeFiles/bh_core.dir/sync.cc.o.d"
  "libbh_core.a"
  "libbh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
