file(REMOVE_RECURSE
  "CMakeFiles/bh_db.dir/record_store.cc.o"
  "CMakeFiles/bh_db.dir/record_store.cc.o.d"
  "libbh_db.a"
  "libbh_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
