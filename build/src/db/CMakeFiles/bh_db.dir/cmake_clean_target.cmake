file(REMOVE_RECURSE
  "libbh_db.a"
)
