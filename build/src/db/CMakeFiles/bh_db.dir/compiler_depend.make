# Empty compiler generated dependencies file for bh_db.
# This may be replaced when dependencies are built.
