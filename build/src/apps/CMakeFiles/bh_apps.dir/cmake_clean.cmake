file(REMOVE_RECURSE
  "CMakeFiles/bh_apps.dir/blog.cc.o"
  "CMakeFiles/bh_apps.dir/blog.cc.o.d"
  "CMakeFiles/bh_apps.dir/framework.cc.o"
  "CMakeFiles/bh_apps.dir/framework.cc.o.d"
  "CMakeFiles/bh_apps.dir/pybbs.cc.o"
  "CMakeFiles/bh_apps.dir/pybbs.cc.o.d"
  "CMakeFiles/bh_apps.dir/thumbnail.cc.o"
  "CMakeFiles/bh_apps.dir/thumbnail.cc.o.d"
  "libbh_apps.a"
  "libbh_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
