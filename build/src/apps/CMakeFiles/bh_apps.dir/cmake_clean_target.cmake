file(REMOVE_RECURSE
  "libbh_apps.a"
)
