# Empty compiler generated dependencies file for bh_apps.
# This may be replaced when dependencies are built.
