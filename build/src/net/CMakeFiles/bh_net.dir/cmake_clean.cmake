file(REMOVE_RECURSE
  "CMakeFiles/bh_net.dir/network.cc.o"
  "CMakeFiles/bh_net.dir/network.cc.o.d"
  "libbh_net.a"
  "libbh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
