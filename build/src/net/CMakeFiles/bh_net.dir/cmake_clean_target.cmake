file(REMOVE_RECURSE
  "libbh_net.a"
)
