file(REMOVE_RECURSE
  "libbh_vm.a"
)
