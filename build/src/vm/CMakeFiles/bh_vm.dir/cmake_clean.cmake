file(REMOVE_RECURSE
  "CMakeFiles/bh_vm.dir/code_builder.cc.o"
  "CMakeFiles/bh_vm.dir/code_builder.cc.o.d"
  "CMakeFiles/bh_vm.dir/context.cc.o"
  "CMakeFiles/bh_vm.dir/context.cc.o.d"
  "CMakeFiles/bh_vm.dir/heap.cc.o"
  "CMakeFiles/bh_vm.dir/heap.cc.o.d"
  "CMakeFiles/bh_vm.dir/interpreter.cc.o"
  "CMakeFiles/bh_vm.dir/interpreter.cc.o.d"
  "CMakeFiles/bh_vm.dir/natives.cc.o"
  "CMakeFiles/bh_vm.dir/natives.cc.o.d"
  "CMakeFiles/bh_vm.dir/profiler.cc.o"
  "CMakeFiles/bh_vm.dir/profiler.cc.o.d"
  "CMakeFiles/bh_vm.dir/program.cc.o"
  "CMakeFiles/bh_vm.dir/program.cc.o.d"
  "libbh_vm.a"
  "libbh_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
