# Empty dependencies file for bh_vm.
# This may be replaced when dependencies are built.
