
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/code_builder.cc" "src/vm/CMakeFiles/bh_vm.dir/code_builder.cc.o" "gcc" "src/vm/CMakeFiles/bh_vm.dir/code_builder.cc.o.d"
  "/root/repo/src/vm/context.cc" "src/vm/CMakeFiles/bh_vm.dir/context.cc.o" "gcc" "src/vm/CMakeFiles/bh_vm.dir/context.cc.o.d"
  "/root/repo/src/vm/heap.cc" "src/vm/CMakeFiles/bh_vm.dir/heap.cc.o" "gcc" "src/vm/CMakeFiles/bh_vm.dir/heap.cc.o.d"
  "/root/repo/src/vm/interpreter.cc" "src/vm/CMakeFiles/bh_vm.dir/interpreter.cc.o" "gcc" "src/vm/CMakeFiles/bh_vm.dir/interpreter.cc.o.d"
  "/root/repo/src/vm/natives.cc" "src/vm/CMakeFiles/bh_vm.dir/natives.cc.o" "gcc" "src/vm/CMakeFiles/bh_vm.dir/natives.cc.o.d"
  "/root/repo/src/vm/profiler.cc" "src/vm/CMakeFiles/bh_vm.dir/profiler.cc.o" "gcc" "src/vm/CMakeFiles/bh_vm.dir/profiler.cc.o.d"
  "/root/repo/src/vm/program.cc" "src/vm/CMakeFiles/bh_vm.dir/program.cc.o" "gcc" "src/vm/CMakeFiles/bh_vm.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bh_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
