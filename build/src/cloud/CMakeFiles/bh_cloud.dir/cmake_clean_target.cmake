file(REMOVE_RECURSE
  "libbh_cloud.a"
)
