file(REMOVE_RECURSE
  "CMakeFiles/bh_cloud.dir/billing.cc.o"
  "CMakeFiles/bh_cloud.dir/billing.cc.o.d"
  "CMakeFiles/bh_cloud.dir/faas.cc.o"
  "CMakeFiles/bh_cloud.dir/faas.cc.o.d"
  "CMakeFiles/bh_cloud.dir/instance.cc.o"
  "CMakeFiles/bh_cloud.dir/instance.cc.o.d"
  "CMakeFiles/bh_cloud.dir/scaling.cc.o"
  "CMakeFiles/bh_cloud.dir/scaling.cc.o.d"
  "libbh_cloud.a"
  "libbh_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
