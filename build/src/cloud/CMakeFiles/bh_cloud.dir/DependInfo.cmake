
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cc" "src/cloud/CMakeFiles/bh_cloud.dir/billing.cc.o" "gcc" "src/cloud/CMakeFiles/bh_cloud.dir/billing.cc.o.d"
  "/root/repo/src/cloud/faas.cc" "src/cloud/CMakeFiles/bh_cloud.dir/faas.cc.o" "gcc" "src/cloud/CMakeFiles/bh_cloud.dir/faas.cc.o.d"
  "/root/repo/src/cloud/instance.cc" "src/cloud/CMakeFiles/bh_cloud.dir/instance.cc.o" "gcc" "src/cloud/CMakeFiles/bh_cloud.dir/instance.cc.o.d"
  "/root/repo/src/cloud/scaling.cc" "src/cloud/CMakeFiles/bh_cloud.dir/scaling.cc.o" "gcc" "src/cloud/CMakeFiles/bh_cloud.dir/scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/bh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bh_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
