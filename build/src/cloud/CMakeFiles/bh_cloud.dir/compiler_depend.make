# Empty compiler generated dependencies file for bh_cloud.
# This may be replaced when dependencies are built.
