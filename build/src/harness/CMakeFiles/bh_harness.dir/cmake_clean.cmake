file(REMOVE_RECURSE
  "CMakeFiles/bh_harness.dir/burst.cc.o"
  "CMakeFiles/bh_harness.dir/burst.cc.o.d"
  "CMakeFiles/bh_harness.dir/report.cc.o"
  "CMakeFiles/bh_harness.dir/report.cc.o.d"
  "CMakeFiles/bh_harness.dir/testbed.cc.o"
  "CMakeFiles/bh_harness.dir/testbed.cc.o.d"
  "CMakeFiles/bh_harness.dir/throughput.cc.o"
  "CMakeFiles/bh_harness.dir/throughput.cc.o.d"
  "libbh_harness.a"
  "libbh_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
