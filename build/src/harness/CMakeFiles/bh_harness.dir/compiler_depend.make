# Empty compiler generated dependencies file for bh_harness.
# This may be replaced when dependencies are built.
