file(REMOVE_RECURSE
  "libbh_harness.a"
)
