# Empty compiler generated dependencies file for bh_gc.
# This may be replaced when dependencies are built.
