file(REMOVE_RECURSE
  "libbh_gc.a"
)
