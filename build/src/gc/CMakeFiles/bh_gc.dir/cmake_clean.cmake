file(REMOVE_RECURSE
  "CMakeFiles/bh_gc.dir/collector.cc.o"
  "CMakeFiles/bh_gc.dir/collector.cc.o.d"
  "libbh_gc.a"
  "libbh_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
