
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/collector.cc" "src/gc/CMakeFiles/bh_gc.dir/collector.cc.o" "gcc" "src/gc/CMakeFiles/bh_gc.dir/collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/bh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bh_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
