
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_webapp.cpp" "examples/CMakeFiles/custom_webapp.dir/custom_webapp.cpp.o" "gcc" "examples/CMakeFiles/custom_webapp.dir/custom_webapp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bh_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/bh_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/bh_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/bh_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/bh_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bh_db.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/bh_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bh_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
