file(REMOVE_RECURSE
  "CMakeFiles/custom_webapp.dir/custom_webapp.cpp.o"
  "CMakeFiles/custom_webapp.dir/custom_webapp.cpp.o.d"
  "custom_webapp"
  "custom_webapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_webapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
