# Empty compiler generated dependencies file for custom_webapp.
# This may be replaced when dependencies are built.
