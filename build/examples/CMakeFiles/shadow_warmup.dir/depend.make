# Empty dependencies file for shadow_warmup.
# This may be replaced when dependencies are built.
