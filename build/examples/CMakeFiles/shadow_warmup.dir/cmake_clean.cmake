file(REMOVE_RECURSE
  "CMakeFiles/shadow_warmup.dir/shadow_warmup.cpp.o"
  "CMakeFiles/shadow_warmup.dir/shadow_warmup.cpp.o.d"
  "shadow_warmup"
  "shadow_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
