# Empty dependencies file for burst_scaling.
# This may be replaced when dependencies are built.
